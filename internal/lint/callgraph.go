package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go is the intra-module call-graph engine behind the
// determinism analyzer family. It is built once per Run from the already
// type-checked syntax: one node per declared function or method, one edge
// per statically resolvable call. Calls through function values and
// interface methods have no body to follow and are treated as opaque
// (assumed deterministic); the //gpulint:deterministic contract comment
// exists so such boundaries can be claimed — and then verified — rather
// than silently trusted.

// Source is one nondeterminism source detected in a function body: a
// wall-clock read, global math/rand use, process identity, map iteration
// order escaping into emitted bytes, a multi-case select, or goroutine
// fan-in collected in arrival order.
type Source struct {
	Desc string    // human form, e.g. "time.Now() (wall clock)"
	Want string    // short tag used in messages: "time.Now", "map range", ...
	Pos  token.Pos // the offending expression or statement
}

// CGEdge is one static call site.
type CGEdge struct {
	To  *types.Func
	Pos token.Pos
}

// CGNode is one declared function with its outgoing calls, detected
// nondeterminism sources, and (if present) its determinism contract.
type CGNode struct {
	Fn       *types.Func
	Pkg      *Package
	Decl     *ast.FuncDecl
	Callees  []CGEdge
	Sources  []Source
	Contract token.Pos // //gpulint:deterministic position, or NoPos
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
	Order []*types.Func // stable traversal order: package path, file, offset
}

// BuildCallGraph constructs the graph over every package in pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{Nodes: map[*types.Func]*CGNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			contracts := contractLines(pkg, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || fn == nil {
					continue
				}
				node := &CGNode{Fn: fn, Pkg: pkg, Decl: fd, Contract: contractFor(pkg, fd, contracts)}
				if fd.Body != nil {
					scanBody(pkg, fd, node)
				}
				cg.Nodes[fn] = node
				cg.Order = append(cg.Order, fn)
			}
		}
	}
	sort.Slice(cg.Order, func(i, j int) bool {
		a, b := cg.Nodes[cg.Order[i]], cg.Nodes[cg.Order[j]]
		pa := a.Pkg.Fset.Position(a.Decl.Pos())
		pb := b.Pkg.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	return cg
}

// contractDirective is the comment that declares a function deterministic.
const contractDirective = "//gpulint:deterministic"

// contractLines maps source lines carrying a //gpulint:deterministic
// comment to the comment position.
func contractLines(pkg *Package, file *ast.File) map[int]token.Pos {
	out := map[int]token.Pos{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, contractDirective) {
				out[pkg.Fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return out
}

// contractFor returns the contract comment position attached to fd: a
// directive in its doc comment, or one trailing on the declaration line.
func contractFor(pkg *Package, fd *ast.FuncDecl, lines map[int]token.Pos) token.Pos {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, contractDirective) {
				return c.Pos()
			}
		}
	}
	if pos, ok := lines[pkg.Fset.Position(fd.Pos()).Line]; ok {
		return pos
	}
	return token.NoPos
}

// staticCallee resolves a call expression to its static callee, or nil
// for calls through function values, method values and built-ins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// randConstructors are math/rand package functions that build a seeded
// generator rather than consuming the shared global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// seededSplit reports whether fn is one of the module's seeded RNG
// constructors: internal/fastrng's New/NewRand (the splitmix chain every
// campaign generator derives from) and the fleet's per-device split
// (Device/DeviceName derive a generator from seed ^ hash(index), a pure
// function of the cohort). These are deterministic by construction, so
// the taint pass treats them as leaves rather than following their call
// graph — the same standing math/rand's constructors get above.
func seededSplit(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch {
	case strings.HasSuffix(pkg.Path(), "internal/fastrng"):
		return strings.HasPrefix(fn.Name(), "New")
	case strings.HasSuffix(pkg.Path(), "internal/fleet"):
		return fn.Name() == "Device" || fn.Name() == "DeviceName"
	}
	return false
}

// callSource classifies a statically resolved callee as a nondeterminism
// source, or returns nil.
func callSource(fn *types.Func, pos token.Pos) *Source {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return &Source{Desc: "time." + fn.Name() + "() (wall clock)", Want: "time." + fn.Name(), Pos: pos}
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
			return &Source{Desc: "global math/rand." + fn.Name() + " (process-shared, seed-independent)", Want: "math/rand", Pos: pos}
		}
	case "os":
		switch fn.Name() {
		case "Getpid", "Getppid", "Hostname", "Environ":
			return &Source{Desc: "os." + fn.Name() + "() (process identity)", Want: "os." + fn.Name(), Pos: pos}
		}
	}
	return nil
}

// scanBody walks one function body (including nested function literals)
// collecting call edges and nondeterminism sources into node.
func scanBody(pkg *Package, fd *ast.FuncDecl, node *CGNode) {
	info := pkg.Info

	// Loop extents, for the fan-in rule: a `go` inside a loop marks the
	// function as a fan-out site.
	var loops []ast.Node
	goInLoop := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.GoStmt:
			for _, l := range loops {
				if l.Pos() <= n.Pos() && n.Pos() <= l.End() {
					goInLoop = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := staticCallee(info, n); fn != nil {
				if src := callSource(fn, n.Pos()); src != nil {
					node.Sources = append(node.Sources, *src)
				} else if !seededSplit(fn) {
					node.Callees = append(node.Callees, CGEdge{To: fn, Pos: n.Pos()})
				}
			}
			if goInLoop && receivesInto(n) {
				node.Sources = append(node.Sources, Source{
					Desc: "goroutine fan-in appended in arrival order (no index-ordered merge)",
					Want: "fan-in",
					Pos:  n.Pos(),
				})
			}
		case *ast.SelectStmt:
			comm := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				node.Sources = append(node.Sources, Source{
					Desc: fmt.Sprintf("select across %d communication cases (runtime picks among ready cases at random)", comm),
					Want: "select",
					Pos:  n.Pos(),
				})
			}
		case *ast.RangeStmt:
			if src := mapRangeSource(pkg, fd, n); src != nil {
				node.Sources = append(node.Sources, *src)
			}
		}
		return true
	})

	sort.Slice(node.Sources, func(i, j int) bool { return node.Sources[i].Pos < node.Sources[j].Pos })
}

// receivesInto reports whether call is an append whose arguments include
// a channel receive — the arrival-order fan-in shape.
func receivesInto(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	for _, arg := range call.Args[1:] {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return true
		}
	}
	return false
}

// isEmitName matches method/function names through which iteration order
// escapes into output bytes or a hash. Sprint* is deliberately absent:
// it is pure — formatting into a value that is later appended and sorted
// is the clean collect-then-order shape.
func isEmitName(name string) bool {
	for _, prefix := range []string{"Write", "Print", "Fprint", "Encode", "Sum"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// mapRangeSource classifies a range statement over a map: if the body
// emits bytes, sends on a channel, appends to a slice that is never
// sorted afterwards in the same function, or concatenates into a string,
// the iteration order reaches the output and the range is a source.
// The canonical clean shape — collect keys, sort, iterate the slice — is
// recognized via the sort-after escape.
func mapRangeSource(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) *Source {
	info := pkg.Info
	t := info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}

	var appendTargets []types.Object
	emits := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			emits = true
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if bt := info.TypeOf(n.Lhs[0]); bt != nil {
					if b, ok := bt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						emits = true
					}
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(n.Args) > 0 {
					if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							appendTargets = append(appendTargets, obj)
						}
					}
				} else if fn, ok := info.Uses[fun].(*types.Func); ok && isEmitName(fn.Name()) {
					emits = true
				}
			case *ast.SelectorExpr:
				if isEmitName(fun.Sel.Name) {
					emits = true
				}
			}
		}
		return true
	})

	if !emits {
		if len(appendTargets) == 0 {
			return nil // order stays local: counting, map-to-map, etc.
		}
		unsorted := false
		for _, obj := range appendTargets {
			if !sortedInFunc(pkg, fd, obj) {
				unsorted = true
			}
		}
		if !unsorted {
			return nil
		}
	}
	return &Source{
		Desc: "map range order escapes (emitted or appended without a sort); iterate sorted keys instead",
		Want: "map range",
		Pos:  rng.Pos(),
	}
}

// sortedInFunc reports whether obj is passed to a sort.*/slices.Sort*
// call anywhere in fd — the collect-keys-then-sort idiom.
func sortedInFunc(pkg *Package, fd *ast.FuncDecl, obj types.Object) bool {
	info := pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sinkRole returns a non-empty role description when fn is a sink root:
// an entry point of the byte-identity contract. In the real module the
// table below names the artifact-emitting packages; in standalone fixture
// packages (no slash in the import path) matching is by name alone so
// fixtures can model sinks without importing the module.
func sinkRole(pkg *Package, fn *types.Func) string {
	name := fn.Name()
	lower := strings.ToLower(name)
	recv := receiverTypeName(fn)
	if strings.Contains(lower, "fingerprint") {
		return "fingerprint/cache-key constructor"
	}
	if strings.Contains(pkg.Path, "/") {
		switch {
		case strings.HasSuffix(pkg.Path, "internal/obs"):
			if strings.HasPrefix(name, "Write") {
				return "obs exposition writer"
			}
		case strings.HasSuffix(pkg.Path, "internal/trace"):
			if strings.HasPrefix(name, "Write") || name == "FromRecorder" {
				return "trace artifact writer"
			}
		case strings.HasSuffix(pkg.Path, "internal/report"):
			if fn.Exported() {
				return "report emitter"
			}
		case strings.HasSuffix(pkg.Path, "internal/reproduce"):
			if name == "Run" || name == "RunContext" || name == "Quick" ||
				strings.HasPrefix(name, "write") || strings.HasPrefix(name, "save") {
				return "reproduction artifact writer"
			}
		case strings.HasSuffix(pkg.Path, "internal/characterize"):
			if recv == "Journal" || strings.Contains(name, "Journal") {
				return "checkpoint journal codec"
			}
		case strings.HasSuffix(pkg.Path, "internal/validity"):
			if strings.HasPrefix(name, "Write") || name == "Finalize" {
				return "triage report writer"
			}
		case strings.HasSuffix(pkg.Path, "internal/fleet"):
			// The fleet shard-count byte-identity contract: everything the
			// streaming aggregator folds or merges lands verbatim in the
			// fleet report, so the fold/merge/finalize surface is a sink.
			if name == "Finalize" || name == "Merge" ||
				strings.HasPrefix(name, "Consume") || strings.HasPrefix(name, "Write") {
				return "fleet aggregate writer"
			}
		}
		return ""
	}
	// Standalone fixture package: name-shape matching only.
	for _, prefix := range []string{"Write", "Export", "Emit"} {
		if strings.HasPrefix(name, prefix) {
			return "artifact writer"
		}
	}
	if recv == "Journal" || strings.Contains(name, "Journal") {
		return "checkpoint journal codec"
	}
	if name == "Finalize" || name == "Merge" {
		return "fleet aggregate writer"
	}
	return ""
}

// receiverTypeName returns the name of fn's receiver type, or "".
func receiverTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// taintInfo records, for one function, the representative nondeterminism
// source reaching it and the first hop of the call chain toward it.
type taintInfo struct {
	src     Source
	srcFn   *types.Func // function whose body contains src
	next    *types.Func // callee one hop closer to the source (nil: local)
	callPos token.Pos   // call site in this function leading to next
	hops    int
}

// sinkInfo records, for one function, the sink root it is reachable from
// and the parent hop of the path back to that root.
type sinkInfo struct {
	root    *types.Func
	role    string
	parent  *types.Func // caller one hop closer to the root (nil: is root)
	callPos token.Pos   // call site in parent reaching this function
	hops    int
}

// detFacts bundles the per-Run determinism analyses shared by the
// determinism and detcontract analyzers.
type detFacts struct {
	cg    *CallGraph
	taint map[*types.Func]*taintInfo
	sink  map[*types.Func]*sinkInfo
}

// computeDetFacts builds the call graph and runs both fixpoints: taint
// propagating from sources up through callers, and sink reachability
// propagating from artifact entry points down through callees. Both
// traversals are breadth-first in the graph's stable order, so the
// representative source, root and path for every function — and therefore
// every diagnostic and -why trace — are deterministic.
func computeDetFacts(pkgs []*Package) *detFacts {
	f := &detFacts{
		cg:    BuildCallGraph(pkgs),
		taint: map[*types.Func]*taintInfo{},
		sink:  map[*types.Func]*sinkInfo{},
	}

	// Taint: seed with functions containing direct sources, then walk
	// reverse edges (callee -> callers).
	callers := map[*types.Func][]CGEdge{} // callee -> {caller, call pos}
	for _, fn := range f.cg.Order {
		for _, e := range f.cg.Nodes[fn].Callees {
			callers[e.To] = append(callers[e.To], CGEdge{To: fn, Pos: e.Pos})
		}
	}
	var queue []*types.Func
	for _, fn := range f.cg.Order {
		node := f.cg.Nodes[fn]
		if len(node.Sources) > 0 {
			f.taint[fn] = &taintInfo{src: node.Sources[0], srcFn: fn}
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		t := f.taint[fn]
		for _, e := range callers[fn] {
			if _, ok := f.taint[e.To]; ok {
				continue
			}
			f.taint[e.To] = &taintInfo{src: t.src, srcFn: t.srcFn, next: fn, callPos: e.Pos, hops: t.hops + 1}
			queue = append(queue, e.To)
		}
	}

	// Sink reachability: seed with sink roots, then walk forward edges.
	queue = queue[:0]
	for _, fn := range f.cg.Order {
		node := f.cg.Nodes[fn]
		if role := sinkRole(node.Pkg, fn); role != "" {
			f.sink[fn] = &sinkInfo{root: fn, role: role}
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		s := f.sink[fn]
		for _, e := range f.cg.Nodes[fn].Callees {
			if _, ok := f.cg.Nodes[e.To]; !ok {
				continue
			}
			if _, ok := f.sink[e.To]; ok {
				continue
			}
			f.sink[e.To] = &sinkInfo{root: s.root, role: s.role, parent: fn, callPos: e.Pos, hops: s.hops + 1}
			queue = append(queue, e.To)
		}
	}
	return f
}

// displayName renders fn as pkg.Name or pkg.Recv.Name.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if recv := receiverTypeName(fn); recv != "" {
		name = recv + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// sinkTrace reconstructs the call path from fn's sink root down to fn,
// as -why trace steps (root first).
func (f *detFacts) sinkTrace(fn *types.Func) []TraceStep {
	// chain[0] = fn, chain[last] = sink root.
	var chain []*types.Func
	for cur := fn; cur != nil; cur = f.sink[cur].parent {
		chain = append(chain, cur)
	}
	root := chain[len(chain)-1]
	rootNode := f.cg.Nodes[root]
	steps := []TraceStep{{
		Pos:  rootNode.Pkg.Fset.Position(rootNode.Decl.Pos()),
		Desc: fmt.Sprintf("sink %s (%s)", displayName(root), f.sink[root].role),
	}}
	for i := len(chain) - 2; i >= 0; i-- {
		child := chain[i]
		s := f.sink[child]
		parentNode := f.cg.Nodes[s.parent]
		steps = append(steps, TraceStep{
			Pos:  parentNode.Pkg.Fset.Position(s.callPos),
			Desc: fmt.Sprintf("%s calls %s", displayName(s.parent), displayName(child)),
		})
	}
	return steps
}

// taintTrace reconstructs the call chain from fn down to the source
// reaching it, as -why trace steps (fn's hop first, source last).
func (f *detFacts) taintTrace(fn *types.Func) []TraceStep {
	var steps []TraceStep
	cur := fn
	for {
		t := f.taint[cur]
		if t.next == nil {
			break
		}
		node := f.cg.Nodes[cur]
		steps = append(steps, TraceStep{
			Pos:  node.Pkg.Fset.Position(t.callPos),
			Desc: fmt.Sprintf("%s calls %s", displayName(cur), displayName(t.next)),
		})
		cur = t.next
	}
	t := f.taint[fn]
	srcNode := f.cg.Nodes[t.srcFn]
	steps = append(steps, TraceStep{
		Pos:  srcNode.Pkg.Fset.Position(t.src.Pos),
		Desc: fmt.Sprintf("source: %s in %s", t.src.Desc, displayName(t.srcFn)),
	})
	return steps
}
