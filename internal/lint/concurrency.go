package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency enforces lock and goroutine hygiene ahead of the planned
// parallelization of the internal/characterize sweeps.
//
// Two rules:
//
//  1. Lock-by-value: a sync.Mutex/RWMutex/WaitGroup/Once/Cond (or any
//     struct containing one) must not be copied — copies of a held lock
//     deadlock or silently stop excluding. Flagged: value receivers and
//     parameters whose type contains a lock, assignments copying
//     a lock-bearing value, and range clauses yielding lock-bearing
//     elements. Taking a pointer, or constructing a fresh value with a
//     composite literal or call, is fine.
//
//  2. Orphan goroutines: a `go` statement whose function shows no
//     completion signal — no WaitGroup Add/Done, no channel operation,
//     no select, no context — can outlive the experiment that spawned
//     it. In a measurement harness that is not just a leak: a stray
//     sweep goroutine keeps mutating the shared device while the next
//     experiment measures, corrupting its numbers. For `go f(args)`
//     with a named callee, passing a channel, context.Context or
//     *sync.WaitGroup counts as the signal.
var Concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "locks copied by value; goroutines without a completion signal",
	Run:  runConcurrency,
}

func runConcurrency(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSignature(pass, info, n)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(pass, info, rhs)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.TypeOf(n.Value); t != nil && containsLock(t) {
						pass.Reportf(n.Value.Pos(),
							"range copies %s by value (contains a sync lock); range over indexes or pointers instead", t)
					}
				}
			case *ast.GoStmt:
				checkGoroutine(pass, info, n)
			}
			return true
		})
	}
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
}

// containsLock reports whether a value of type t embeds a sync lock by
// value (directly, in a struct field, or in an array element).
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && lockTypes[obj.Pkg().Path()+"."+obj.Name()] {
			return true
		}
		return containsLockRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLockRec(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(t.Elem(), seen)
	}
	return false
}

// checkFuncSignature flags value receivers, parameters and results whose
// type contains a lock.
func checkFuncSignature(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, ptr := t.(*types.Pointer); ptr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Type.Pos(),
					"%s %s passes %s by value (contains a sync lock); use a pointer", fd.Name.Name, kind, t)
			}
		}
	}
	// Results are deliberately not checked: returning a fresh value from a
	// constructor (func NewX() X) copies an unlocked zero value, which is
	// safe and idiomatic.
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

// checkLockCopy flags assignments whose right-hand side copies an
// existing lock-bearing value. Fresh values (composite literals, calls,
// conversions producing new values) are fine.
func checkLockCopy(pass *Pass, info *types.Info, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// an existing addressable value: copying it copies the lock
	default:
		return
	}
	t := info.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, ptr := t.(*types.Pointer); ptr {
		return
	}
	if containsLock(t) {
		pass.Reportf(rhs.Pos(), "assignment copies %s by value (contains a sync lock); use a pointer", t)
	}
}

// checkGoroutine flags go statements with no visible completion signal.
func checkGoroutine(pass *Pass, info *types.Info, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if !hasCompletionSignal(info, lit.Body) {
			pass.Reportf(g.Pos(),
				"goroutine has no visible completion signal (WaitGroup, channel, select or context); the sweep cannot wait for or cancel it")
		}
		return
	}
	// Named callee: a channel, context or *sync.WaitGroup argument (or a
	// lock-bearing receiver pointer) is taken as the completion path.
	for _, arg := range g.Call.Args {
		if isSignalType(info.TypeOf(arg)) {
			return
		}
	}
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if isSignalType(info.TypeOf(sel.X)) {
			return
		}
	}
	pass.Reportf(g.Pos(),
		"goroutine has no visible completion signal (no WaitGroup/channel/context reaches it); the sweep cannot wait for or cancel it")
}

// isSignalType reports whether t can carry a completion signal: a
// channel, a context.Context, a *sync.WaitGroup, or something containing
// one of those.
func isSignalType(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Chan:
		return true
	case *types.Pointer:
		return isSignalType(t.Elem()) || containsLock(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
		return isSignalType(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if isSignalType(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Interface:
		// context.Context reaches here when named; other interfaces: no.
		return false
	}
	return false
}

// hasCompletionSignal scans a goroutine body for any construct that ties
// its lifetime to the launcher: channel sends/receives/closes, select,
// WaitGroup method calls, or use of a context.
func hasCompletionSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if name == "Done" || name == "Add" || name == "Wait" || name == "Lock" || name == "Unlock" {
					if isSignalType(info.TypeOf(fun.X)) || isSyncType(info.TypeOf(fun.X)) {
						found = true
					}
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
