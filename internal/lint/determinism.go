package lint

import (
	"fmt"
)

// Determinism is the cross-function determinism-taint pass guarding the
// byte-identity contract: campaigns must be bit-identical at a fixed seed
// across worker counts, fault profiles and checkpoint resumes, so nothing
// nondeterministic may reach an artifact path.
//
// Sources (detected in function bodies):
//
//   - time.Now / time.Since / time.Until — wall clock;
//   - global math/rand functions — process-shared generator, not derived
//     from the campaign seed (methods on a seeded *rand.Rand are fine);
//   - os.Getpid / os.Getppid / os.Hostname / os.Environ — process identity;
//   - map range whose iteration order escapes into emitted bytes, a
//     channel, or a slice that is never sorted in the same function;
//   - select with two or more communication cases — the runtime picks
//     among ready cases at random;
//   - goroutine fan-in appended in arrival order (a `go` inside a loop
//     plus append(s, <-ch)) with no index-ordered merge.
//
// Sinks are the artifact entry points of the byte-identity contract —
// obs exposition writers, trace/report/reproduce artifact writers, the
// checkpoint journal codec, and fingerprint/cache-key constructors —
// plus everything reachable from them through the static call graph
// (see sinkRole in callgraph.go for the exact table). A diagnostic fires
// at each source whose enclosing function is inside a sink's call cone;
// gpulint -why prints the full source→sink call path.
//
// Calls through function values and interface methods are opaque to the
// graph and assumed deterministic; claim such boundaries explicitly with
// a //gpulint:deterministic contract comment, which the detcontract
// analyzer verifies rather than trusts.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "nondeterminism sources reaching artifact/export paths through the call graph",
	RunModule: runDeterminism,
}

// DetContract verifies //gpulint:deterministic contract comments: a
// function so annotated must have no nondeterminism source reachable
// through its static call graph. The comment is a checked claim, not a
// suppression — an annotated function that goes nondeterministic three
// refactors later fails the build, unlike a //gpulint:ignore which would
// silently keep suppressing.
var DetContract = &Analyzer{
	Name:      "detcontract",
	Doc:       "//gpulint:deterministic contract comments whose function is actually nondeterministic",
	RunModule: runDetContract,
}

func runDeterminism(mp *ModulePass) {
	f := mp.detFacts()
	for _, fn := range f.cg.Order {
		node := f.cg.Nodes[fn]
		s, reachable := f.sink[fn]
		if !reachable || len(node.Sources) == 0 {
			continue
		}
		base := f.sinkTrace(fn)
		for _, src := range node.Sources {
			where := "inside it"
			if s.hops == 1 {
				where = "one call hop below it"
			} else if s.hops > 1 {
				where = fmt.Sprintf("%d call hops below it", s.hops)
			}
			trace := append(append([]TraceStep{}, base...), TraceStep{
				Pos:  node.Pkg.Fset.Position(src.Pos),
				Desc: fmt.Sprintf("source: %s in %s", src.Desc, displayName(fn)),
			})
			mp.report(node.Pkg, src.Pos, trace,
				fmt.Sprintf("nondeterministic %s reaches %s (%s) %s, breaking byte-identity; sort/seed/order it or acknowledge with //gpulint:ignore determinism",
					src.Want, displayName(s.root), s.role, where))
		}
	}
}

func runDetContract(mp *ModulePass) {
	f := mp.detFacts()
	for _, fn := range f.cg.Order {
		node := f.cg.Nodes[fn]
		if node.Contract == 0 {
			continue
		}
		t, tainted := f.taint[fn]
		if !tainted {
			continue
		}
		depth := "directly"
		if t.hops > 0 {
			depth = fmt.Sprintf("through %d call hops", t.hops)
		}
		mp.report(node.Pkg, node.Decl.Pos(), f.taintTrace(fn),
			fmt.Sprintf("%s is declared deterministic but reaches %s %s; fix the source or drop the //gpulint:deterministic contract",
				displayName(fn), t.src.Desc, depth))
	}
}
