package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDeterminismWhyTrace is the acceptance-critical case for -why: the
// time.Now finding in the determinism_bad fixture must carry a complete
// source→sink call path — sink root first, one step per call hop, the
// source last — exactly what gpulint -why prints.
func TestDeterminismWhyTrace(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "determinism_bad"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{Determinism})
	var found *Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "time.Now") {
			found = &diags[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no time.Now finding in determinism_bad; got %v", diags)
	}
	// WriteReport -> stamp -> sample: sink step, two call hops, source.
	if len(found.Trace) != 4 {
		t.Fatalf("want a 4-step trace (sink, 2 hops, source), got %d: %v", len(found.Trace), found.Trace)
	}
	if !strings.Contains(found.Trace[0].Desc, "sink") || !strings.Contains(found.Trace[0].Desc, "WriteReport") {
		t.Errorf("trace must start at the sink root: %q", found.Trace[0].Desc)
	}
	for _, hop := range found.Trace[1 : len(found.Trace)-1] {
		if !strings.Contains(hop.Desc, "calls") {
			t.Errorf("intermediate trace step is not a call hop: %q", hop.Desc)
		}
	}
	last := found.Trace[len(found.Trace)-1]
	if !strings.Contains(last.Desc, "source:") || !strings.Contains(last.Desc, "time.Now") {
		t.Errorf("trace must end at the source: %q", last.Desc)
	}
	if last.Pos != found.Pos {
		t.Errorf("source step position %v differs from the diagnostic position %v", last.Pos, found.Pos)
	}
}

// TestDeterminismContractBarrier: the detcontract analyzer must verify,
// not trust — the annotated function in detcontract_bad reaches a clock
// through a callee and must be flagged, while both annotated functions in
// detcontract_ok hold and stay silent. (The fixture suite covers the
// same ground; this pins the analyzer subset in isolation.)
func TestDeterminismContractBarrier(t *testing.T) {
	bad, err := Load(filepath.Join("testdata", "src", "detcontract_bad"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(bad, []*Analyzer{DetContract})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "declared deterministic") {
		t.Fatalf("want exactly one contract violation, got %v", diags)
	}
	if len(diags[0].Trace) == 0 {
		t.Error("contract violation carries no -why trace")
	}
	ok, err := Load(filepath.Join("testdata", "src", "detcontract_ok"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(ok, []*Analyzer{DetContract}); len(diags) != 0 {
		t.Fatalf("verified-clean contracts must not be flagged: %v", diags)
	}
}

// TestJSONGolden pins the gpulint -json -why byte stream over the
// determinism_bad fixture: two consecutive runs must encode to identical
// bytes (stable sort + dedup), and those bytes must match the checked-in
// golden. Regenerate with: go test ./internal/lint -run JSONGolden -update
func TestJSONGolden(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinism_bad")
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs [2]bytes.Buffer
	for i := range runs {
		pkgs, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&runs[i], Run(pkgs, All()), abs, true); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Fatal("gpulint -json output is not byte-stable across runs")
	}

	golden := filepath.Join("testdata", "golden", "determinism_bad.jsonl")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, runs[0].Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(runs[0].Bytes(), want) {
		t.Errorf("gpulint -json output drifted from the golden; diff or regenerate with -update\ngot:\n%swant:\n%s", runs[0].Bytes(), want)
	}
}

// TestStaleIgnoreScoping: a directive is only judged stale when every
// analyzer it names actually ran — `-only unitsafety` must not declare an
// errcheck suppression dead.
func TestStaleIgnoreScoping(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "staleignore_bad"))
	if err != nil {
		t.Fatal(err)
	}
	// errcheck did not run: the unused errcheck directive is out of scope,
	// but the unknown-analyzer directive is always reported.
	diags := Run(pkgs, []*Analyzer{UnitSafety, StaleIgnore})
	for _, d := range diags {
		if strings.Contains(d.Message, "suppressed nothing") {
			t.Errorf("errcheck directive judged stale without errcheck running: %s", d)
		}
	}
	unknown := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown analyzer") {
			unknown++
		}
	}
	if unknown != 1 {
		t.Errorf("want exactly one unknown-analyzer report, got %d in %v", unknown, diags)
	}
	// Without StaleIgnore in the set, the audit must not run at all.
	if diags := Run(pkgs, []*Analyzer{UnitSafety}); len(diags) != 0 {
		t.Errorf("audit ran without the staleignore analyzer: %v", diags)
	}
}
