// Package linalg provides the small dense linear algebra kernel the
// regression layer needs: column-major matrices and a Householder QR
// least-squares solver. Householder QR is used instead of the normal
// equations because the counter matrices are badly conditioned (counters
// are strongly correlated by construction), and XᵀX squares the condition
// number.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec: len(x) = %d, want %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrRankDeficient is returned when the least-squares system has
// (numerically) linearly dependent columns.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// SolveLS solves min‖A·x − b‖₂ for x via Householder QR. A must have at
// least as many rows as columns. A and b are not modified.
func SolveLS(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: SolveLS: len(b) = %d, want %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: SolveLS: underdetermined system %d×%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rhs := append([]float64(nil), b...)

	// Householder triangularization, applying the reflectors to rhs.
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			return nil, ErrRankDeficient
		}
		// Choose the reflector sign that avoids cancellation when the
		// diagonal element is shifted by 1 below.
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		// And to the right-hand side.
		var s float64
		for i := k; i < m; i++ {
			s += qr.At(i, k) * rhs[i]
		}
		s = -s / qr.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * qr.At(i, k)
		}
		qr.Set(k, k, -norm) // store R's diagonal
	}

	// Back substitution on R·x = rhs[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		d := qr.At(k, k)
		if math.Abs(d) < 1e-12 {
			return nil, ErrRankDeficient
		}
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= qr.At(k, j) * x[j]
		}
		x[k] = s / d
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrRankDeficient
		}
	}
	return x, nil
}
