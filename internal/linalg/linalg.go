// Package linalg provides the small dense linear algebra kernel the
// regression layer needs: column-major matrices and a Householder QR
// least-squares solver. Householder QR is used instead of the normal
// equations because the counter matrices are badly conditioned (counters
// are strongly correlated by construction), and XᵀX squares the condition
// number.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec: len(x) = %d, want %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrRankDeficient is returned when the least-squares system has
// (numerically) linearly dependent columns.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// SolveLS solves min‖A·x − b‖₂ for x via Householder QR. A must have at
// least as many rows as columns. A and b are not modified.
//
// The reflectors are applied to all trailing columns in two row-major
// sweeps per step (gather the projections, then update), so the inner
// loops walk the Data slice contiguously instead of striding down
// columns — this routine sits under every candidate fit of forward
// selection and dominates training time.
func SolveLS(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: SolveLS: len(b) = %d, want %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: SolveLS: underdetermined system %d×%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	data := qr.Data
	rhs := append([]float64(nil), b...)
	proj := make([]float64, n) // per-column reflector projections, reused

	// Householder triangularization, applying the reflectors to rhs.
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal, scaled by the
		// largest magnitude so squaring cannot overflow or underflow.
		var scale float64
		for i := k; i < m; i++ {
			if v := math.Abs(data[i*n+k]); v > scale {
				scale = v
			}
		}
		if scale == 0 {
			return nil, ErrRankDeficient
		}
		var ssq float64
		invScale := 1 / scale
		for i := k; i < m; i++ {
			v := data[i*n+k] * invScale
			ssq += v * v
		}
		norm := scale * math.Sqrt(ssq)
		// Choose the reflector sign that avoids cancellation when the
		// diagonal element is shifted by 1 below.
		if data[k*n+k] < 0 {
			norm = -norm
		}
		invNorm := 1 / norm
		for i := k; i < m; i++ {
			data[i*n+k] *= invNorm
		}
		data[k*n+k]++

		// Apply the reflector to the remaining columns and rhs: one pass
		// gathers every column's projection onto the reflector, a second
		// pass subtracts; both touch each matrix row exactly once.
		s := proj[k+1:]
		for j := range s {
			s[j] = 0
		}
		var sr float64
		for i := k; i < m; i++ {
			row := data[i*n : i*n+n]
			vi := row[k]
			if vi == 0 {
				continue
			}
			for j, aij := range row[k+1:] {
				s[j] += vi * aij
			}
			sr += vi * rhs[i]
		}
		invDiag := -1 / data[k*n+k]
		for j := range s {
			s[j] *= invDiag
		}
		sr *= invDiag
		for i := k; i < m; i++ {
			row := data[i*n : i*n+n]
			vi := row[k]
			if vi == 0 {
				continue
			}
			for j := range row[k+1:] {
				row[k+1+j] += s[j] * vi
			}
			rhs[i] += sr * vi
		}
		data[k*n+k] = -norm // store R's diagonal
	}

	// Back substitution on R·x = rhs[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		d := data[k*n+k]
		if math.Abs(d) < 1e-12 {
			return nil, ErrRankDeficient
		}
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= data[k*n+j] * x[j]
		}
		x[k] = s / d
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrRankDeficient
		}
	}
	return x, nil
}
