// Package linalg provides the small dense linear algebra kernel the
// regression layer needs: column-major matrices and a Householder QR
// least-squares solver. Householder QR is used instead of the normal
// equations because the counter matrices are badly conditioned (counters
// are strongly correlated by construction), and XᵀX squares the condition
// number.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// matrixPool recycles Matrix headers and their backing storage for the
// regression layer, which assembles and discards one design matrix per
// candidate fit.
var matrixPool = sync.Pool{New: func() any { return new(Matrix) }}

// GetMatrix returns a pooled rows×cols matrix whose contents are
// UNSPECIFIED — callers must write every cell before reading any (unlike
// NewMatrix, which zeroes). Pair with PutMatrix when the matrix no longer
// escapes; un-put matrices are ordinary garbage.
func GetMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	m := matrixPool.Get().(*Matrix)
	if cap(m.Data) < rows*cols {
		m.Data = make([]float64, rows*cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:rows*cols]
	return m
}

// PutMatrix returns a matrix to the pool. Only the sole owner may call
// it; the matrix must not be touched afterwards.
func PutMatrix(m *Matrix) {
	if m != nil {
		matrixPool.Put(m)
	}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec: len(x) = %d, want %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// ErrRankDeficient is returned when the least-squares system has
// (numerically) linearly dependent columns.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// solveScratch is SolveLS's reusable factorization workspace.
type solveScratch struct {
	data []float64 // QR copy of the input matrix
	rhs  []float64 // transformed right-hand side
	proj []float64 // per-column reflector projections
}

var solvePool = sync.Pool{New: func() any { return new(solveScratch) }}

// SolveLS solves min‖A·x − b‖₂ for x via Householder QR. A must have at
// least as many rows as columns. A and b are not modified.
//
// The reflectors are applied to all trailing columns in two row-major
// sweeps per step (gather the projections, then update), so the inner
// loops walk the Data slice contiguously instead of striding down
// columns — this routine sits under every candidate fit of forward
// selection and dominates training time.
func SolveLS(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: SolveLS: len(b) = %d, want %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: SolveLS: underdetermined system %d×%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	// The factorization workspace (QR copy, transformed rhs, projection
	// scratch) never escapes; recycle it — one solve runs per candidate
	// fit of forward selection, and the copy dominated the solver's
	// allocation profile. Every reused word is overwritten by the copies
	// below or zeroed before use (proj).
	sc := solvePool.Get().(*solveScratch)
	defer solvePool.Put(sc)
	if cap(sc.data) < m*n {
		sc.data = make([]float64, m*n)
	}
	data := sc.data[:m*n]
	copy(data, a.Data)
	if cap(sc.rhs) < m {
		sc.rhs = make([]float64, m)
	}
	rhs := sc.rhs[:m]
	copy(rhs, b)
	if cap(sc.proj) < n {
		sc.proj = make([]float64, n)
	}
	proj := sc.proj[:n] // per-column reflector projections, reused

	// Householder triangularization, applying the reflectors to rhs.
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal, scaled by the
		// largest magnitude so squaring cannot overflow or underflow.
		var scale float64
		for i := k; i < m; i++ {
			if v := math.Abs(data[i*n+k]); v > scale {
				scale = v
			}
		}
		if scale == 0 {
			return nil, ErrRankDeficient
		}
		var ssq float64
		invScale := 1 / scale
		for i := k; i < m; i++ {
			v := data[i*n+k] * invScale
			ssq += v * v
		}
		norm := scale * math.Sqrt(ssq)
		// Choose the reflector sign that avoids cancellation when the
		// diagonal element is shifted by 1 below.
		if data[k*n+k] < 0 {
			norm = -norm
		}
		invNorm := 1 / norm
		for i := k; i < m; i++ {
			data[i*n+k] *= invNorm
		}
		data[k*n+k]++

		// Apply the reflector to the remaining columns and rhs: one pass
		// gathers every column's projection onto the reflector, a second
		// pass subtracts; both touch each matrix row exactly once.
		s := proj[k+1:]
		for j := range s {
			s[j] = 0
		}
		var sr float64
		for i := k; i < m; i++ {
			row := data[i*n : i*n+n]
			vi := row[k]
			if vi == 0 {
				continue
			}
			for j, aij := range row[k+1:] {
				s[j] += vi * aij
			}
			sr += vi * rhs[i]
		}
		invDiag := -1 / data[k*n+k]
		for j := range s {
			s[j] *= invDiag
		}
		sr *= invDiag
		for i := k; i < m; i++ {
			row := data[i*n : i*n+n]
			vi := row[k]
			if vi == 0 {
				continue
			}
			for j := range row[k+1:] {
				row[k+1+j] += s[j] * vi
			}
			rhs[i] += sr * vi
		}
		data[k*n+k] = -norm // store R's diagonal
	}

	// Back substitution on R·x = rhs[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		d := data[k*n+k]
		if math.Abs(d) < 1e-12 {
			return nil, ErrRankDeficient
		}
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= data[k*n+j] * x[j]
		}
		x[k] = s / d
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrRankDeficient
		}
	}
	return x, nil
}
