package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims %d×%d, want 3×2", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At returned wrong elements")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Error("Set did not stick")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Error("Clone aliases the original")
	}
}

func TestFromRowsRejectsBadInput(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows with ragged rows should fail")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("MulVec with wrong length should fail")
	}
}

func TestSolveLSExactSquare(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLS(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 1) || !close(x[1], 3) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t over noisy-free samples: exact recovery.
	var rows [][]float64
	var b []float64
	for i := 0; i < 20; i++ {
		tt := float64(i)
		rows = append(rows, []float64{1, tt})
		b = append(b, 2+3*tt)
	}
	a, _ := FromRows(rows)
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 2) || !close(x[1], 3) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestSolveLSLeastSquaresProperty(t *testing.T) {
	// Property: the residual of the LS solution is orthogonal to the
	// column space (within tolerance), i.e. no perturbation of x lowers
	// the residual norm.
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		m, n := 30, 4
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLS(a, b)
		if err != nil {
			return false
		}
		base := residualNorm(a, x, b)
		for j := 0; j < n; j++ {
			for _, eps := range []float64{1e-4, -1e-4} {
				xp := append([]float64(nil), x...)
				xp[j] += eps
				if residualNorm(a, xp, b) < base-1e-10 {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 25; i++ {
		if !f() {
			t.Fatal("found perturbation reducing LS residual")
		}
	}
}

func TestSolveLSRejectsRankDeficient(t *testing.T) {
	// Two identical columns.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLS(a, []float64{1, 2, 3}); err == nil {
		t.Error("SolveLS accepted rank-deficient system")
	}
	// Zero column.
	z, _ := FromRows([][]float64{{1, 0}, {2, 0}, {3, 0}})
	if _, err := SolveLS(z, []float64{1, 2, 3}); err == nil {
		t.Error("SolveLS accepted zero column")
	}
}

func TestSolveLSRejectsBadShapes(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := SolveLS(a, []float64{1}); err == nil {
		t.Error("SolveLS accepted underdetermined system")
	}
	b, _ := FromRows([][]float64{{1}, {2}})
	if _, err := SolveLS(b, []float64{1}); err == nil {
		t.Error("SolveLS accepted mismatched rhs length")
	}
}

func TestSolveLSRecoversRandomModelsProperty(t *testing.T) {
	// Property: for well-conditioned random A and x*, SolveLS(A, A·x*)
	// recovers x*.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 40, 5
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64() + 0.1
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64() * 10
		}
		b, _ := a.MulVec(want)
		got, err := SolveLS(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func residualNorm(a *Matrix, x, b []float64) float64 {
	y, _ := a.MulVec(x)
	var s float64
	for i := range y {
		d := y[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func close(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
