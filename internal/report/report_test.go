package report

import (
	"strings"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/regress"
	"gpuperf/internal/validity"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "bb")
	tb.AddRow("x")
	tb.AddRowf(3.14159, 7)
	s := tb.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "a") || !strings.Contains(s, "bb") {
		t.Error("headers missing")
	}
	if !strings.Contains(s, "3.142") {
		t.Errorf("float formatting wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("%d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("a,b", `q"r`)
	csv := tb.CSV()
	want := "x,y\n\"a,b\",\"q\"\"r\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

func TestBoxLine(t *testing.T) {
	s := BoxLine(10, 20, 30, 40, 50, 0, 100, 40)
	if len(s) != 40 {
		t.Fatalf("width %d, want 40", len(s))
	}
	for _, ch := range []string{"|", "[", "]", "+"} {
		if !strings.Contains(s, ch) {
			t.Errorf("BoxLine missing %q: %q", ch, s)
		}
	}
	if idx := strings.Index(s, "+"); idx < strings.Index(s, "[") || idx > strings.Index(s, "]") {
		t.Errorf("median outside the box: %q", s)
	}
	if got := BoxLine(1, 2, 3, 4, 5, 5, 5, 20); strings.TrimSpace(got) != "" {
		t.Errorf("degenerate range should render blank, got %q", got)
	}
}

func TestTable1ContainsSpecs(t *testing.T) {
	s := Table1(arch.AllBoards()).String()
	for _, want := range []string{"GTX 285", "GTX 680", "Kepler", "1536", "648/1080/1411", "192.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable3MatchesValidity(t *testing.T) {
	s := Table3(arch.AllBoards()).String()
	if !strings.Contains(s, "Core-L, Mem-L") {
		t.Error("Table3 missing the (L-L) row")
	}
	// The (L-L) row: GTX 285 "-", GTX 460 "yes", GTX 480 "yes", GTX 680 "-".
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "Core-L, Mem-L") {
			if !strings.Contains(line, "-") || strings.Count(line, "yes") != 2 {
				t.Errorf("(L-L) row wrong: %q", line)
			}
		}
	}
}

func fakeSweep(bench string) *characterize.BenchResult {
	return &characterize.BenchResult{
		Benchmark: bench,
		Board:     "GTX 680",
		Pairs: []characterize.PairResult{
			{Pair: clock.DefaultPair(), TimePerIter: 1, AvgWatts: 200, EnergyPerIter: 200},
			{Pair: clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh}, TimePerIter: 1.1, AvgWatts: 140, EnergyPerIter: 154},
		},
	}
}

func TestTable4AndFig4(t *testing.T) {
	boards := []*arch.Spec{arch.GTX680()}
	results := map[string][]*characterize.BenchResult{"GTX 680": {fakeSweep("backprop")}}
	s := Table4(boards, results, nil).String()
	if !strings.Contains(s, "backprop") || !strings.Contains(s, "(M-H)") {
		t.Errorf("Table4 wrong:\n%s", s)
	}
	f := Fig4(boards, results)
	if !strings.Contains(f, "backprop") || !strings.Contains(f, "%") {
		t.Errorf("Fig4 wrong:\n%s", f)
	}
}

// TestTable4TriageGate: a cell the triage engine judged non-VALID renders
// "n/a (unstable)" even though the sweep itself produced a best pair.
func TestTable4TriageGate(t *testing.T) {
	boards := []*arch.Spec{arch.GTX680()}
	results := map[string][]*characterize.BenchResult{"GTX 680": {fakeSweep("backprop")}}
	cohort := validity.Cohort{Seed: 42, Boards: []string{"GTX 680"}, CodeVersion: "test"}
	tr := validity.NewTriage(cohort, 1, 1, 0)
	if err := tr.Observe("table4", "GTX 680", "backprop", "(M-H)", validity.Run{
		Verdict: validity.Verdict{Class: validity.InfraFlake, Reason: "retry budget exhausted at launch.hang"},
	}); err != nil {
		t.Fatal(err)
	}
	s := Table4(boards, results, tr).String()
	if !strings.Contains(s, "n/a (unstable)") {
		t.Errorf("triage-gated Table4 still shows a best pair:\n%s", s)
	}
	if strings.Contains(s, "(M-H)") {
		t.Errorf("triage-gated Table4 leaked the best pair:\n%s", s)
	}
}

func TestFigCurves(t *testing.T) {
	spec := arch.GTX680()
	curves := []characterize.Curve{{
		MemLevel: arch.FreqHigh,
		MemMHz:   3004,
		Points:   []characterize.CurvePoint{{CoreMHz: 1411, Perf: 1, Efficiency: 1}},
	}}
	s := FigCurves("Fig. 1", spec, curves).String()
	if !strings.Contains(s, "Mem-H") || !strings.Contains(s, "1411") {
		t.Errorf("FigCurves wrong:\n%s", s)
	}
}

func TestModelTables(t *testing.T) {
	boards := []*arch.Spec{arch.GTX285(), arch.GTX680()}
	r2 := map[string][2]float64{"GTX 285": {0.30, 0.91}, "GTX 680": {0.18, 0.91}}
	s := Table56(r2, boards).String()
	if !strings.Contains(s, "0.30") || !strings.Contains(s, "0.18") {
		t.Errorf("Table56 wrong:\n%s", s)
	}
	evals := map[string][2]*core.Eval{
		"GTX 285": {{MeanAbsPct: 15.0, MeanAbsRaw: 20.1}, {MeanAbsPct: 67.9}},
		"GTX 680": {{MeanAbsPct: 23.5, MeanAbsRaw: 23.7}, {MeanAbsPct: 33.5}},
	}
	s = Table78(evals, boards).String()
	for _, want := range []string{"15.0", "20.1", "67.9", "33.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table78 missing %q:\n%s", want, s)
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	s := Fig56("Fig. 5", []core.BenchmarkError{{Benchmark: "sgemm", MeanPct: 12.5}}).String()
	if !strings.Contains(s, "sgemm") || !strings.Contains(s, "12.5") {
		t.Errorf("Fig56 wrong:\n%s", s)
	}
	s = Fig78("Fig. 7", []core.SweepPoint{{Vars: 5, AdjR2: 0.5, MeanAbsPct: 20}}).String()
	if !strings.Contains(s, "0.500") {
		t.Errorf("Fig78 wrong:\n%s", s)
	}
	s = Fig910("Fig. 9", []core.PairEval{
		{Label: "(H-H)", Box: regress.BoxStats{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}},
		{Label: "unified", Box: regress.BoxStats{Min: 2, Q1: 3, Median: 4, Q3: 6, Max: 9}},
	})
	if !strings.Contains(s, "unified") || !strings.Contains(s, "+") {
		t.Errorf("Fig910 wrong:\n%s", s)
	}
	s = Fig11("Fig. 11", []core.Influence{{Variable: "inst_executed", Share: 0.4}}).String()
	if !strings.Contains(s, "inst_executed") || !strings.Contains(s, "40.0%") {
		t.Errorf("Fig11 wrong:\n%s", s)
	}
}

func TestValidPairsLine(t *testing.T) {
	s := ValidPairsLine(arch.GTX680())
	if !strings.HasPrefix(s, "GTX 680:") || !strings.Contains(s, "(H-H)") || strings.Contains(s, "(L-L)") {
		t.Errorf("ValidPairsLine wrong: %q", s)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("Title", "a", "b")
	tb.AddRow("x|y", "2")
	md := tb.Markdown()
	for _, want := range []string{"**Title**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if len(lines) != 5 { // caption, blank, header, rule, row
		t.Errorf("%d lines, want 5:\n%s", len(lines), md)
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("Fig. 1 (GTX 680)", "core MHz", "normalized perf")
	if err := c.AddSeries("Mem-H", []float64{648, 1080, 1411}, []float64{0.46, 0.77, 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("Mem-L", []float64{1080, 1411}, []float64{0.75, 0.97}); err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"Fig. 1 (GTX 680)", "Mem-H", "Mem-L", "core MHz", "*", "o", "+--"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 16 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartEdgeCases(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	if err := c.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.AddSeries("empty", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	// Constant series must not divide by zero.
	if err := c.AddSeries("flat", []float64{1, 2}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	if s := c.String(); !strings.Contains(s, "flat") {
		t.Errorf("flat series lost:\n%s", s)
	}
}
