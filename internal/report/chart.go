package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart is a small ASCII line chart: series of (x, y) points rendered on a
// character grid with axes — enough to make the Figs. 1–3 panels readable
// in a terminal without leaving the harness.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	series []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// NewChart creates an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 60, Height: 16}
}

// markers cycle across series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// AddSeries appends one line. xs and ys must have equal length.
func (c *Chart) AddSeries(name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: series %q: %d xs vs %d ys", name, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: series %q is empty", name)
	}
	c.series = append(c.series, chartSeries{
		name:   name,
		marker: markers[len(c.series)%len(markers)],
		xs:     append([]float64(nil), xs...),
		ys:     append([]float64(nil), ys...),
	})
	return nil
}

// String renders the chart.
func (c *Chart) String() string {
	if len(c.series) == 0 {
		return c.Title + " (no data)\n"
	}
	w, h := c.Width, c.Height
	if w < 20 {
		w = 20
	}
	if h < 5 {
		h = 5
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			xmin, xmax = math.Min(xmin, s.xs[i]), math.Max(xmax, s.xs[i])
			ymin, ymax = math.Min(ymin, s.ys[i]), math.Max(ymax, s.ys[i])
		}
	}
	if xmax == xmin { //gpulint:ignore unitsafety -- guards division by zero, which only exact equality causes
		xmax = xmin + 1
	}
	if ymax == ymin { //gpulint:ignore unitsafety -- guards division by zero, which only exact equality causes
		ymax = ymin + 1
	}
	// A little vertical headroom reads better.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, m byte) {
		col := int((x - xmin) / (xmax - xmin) * float64(w-1))
		row := h - 1 - int((y-ymin)/(ymax-ymin)*float64(h-1))
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = m
		}
	}
	for _, s := range c.series {
		// Linear interpolation between points for continuous-ish lines.
		for i := 1; i < len(s.xs); i++ {
			steps := w / max(1, len(s.xs)-1)
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(max(1, steps))
				plot(s.xs[i-1]+f*(s.xs[i]-s.xs[i-1]), s.ys[i-1]+f*(s.ys[i]-s.ys[i-1]), '.')
			}
		}
		for i := range s.xs {
			plot(s.xs[i], s.ys[i], s.marker)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.4g |%s\n", ymax, row)
		case h - 1:
			fmt.Fprintf(&b, "%10.4g |%s\n", ymin, row)
		default:
			fmt.Fprintf(&b, "%10s |%s\n", "", row)
		}
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g  (%s)\n", "", w/2, xmin, w-w/2, xmax, c.XLabel)
	for _, s := range c.series {
		fmt.Fprintf(&b, "%12c %s\n", s.marker, s.name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%12s y: %s\n", "", c.YLabel)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
