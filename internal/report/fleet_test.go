package report

import (
	"strings"
	"testing"

	"gpuperf/internal/fleet"
)

func TestFleetSummary(t *testing.T) {
	r := &fleet.Report{
		Seed:       42,
		Devices:    100,
		BaseBoards: []string{"GTX 680", "GTX 480"},
		Jitter:     "corevolt:0.03,memvolt:0.02,vexp:0.05,leak:0.08,meter:0.01",
		Cells:      1400,
		Benches: []fleet.BenchReport{{
			Bench:      "backprop",
			Devices:    100,
			Cells:      1400,
			NoBaseline: 2,
			Pairs: []fleet.PairSummary{
				{Pair: "(H-H)", Cells: 100, MeanTimeS: 0.0123, MeanWatts: 141.5, MeanEnergyJ: 1.74, StdEnergyJ: 0.09},
				{Pair: "(L-H)", Cells: 100, Quarantined: 3, MeanTimeS: 0.0150, MeanWatts: 110.2, MeanEnergyJ: 1.65, StdEnergyJ: 0.08},
			},
			BestPairs: []fleet.PairCount{
				{Pair: "(L-H)", Devices: 80},
				{Pair: "(H-H)", Devices: 18},
			},
			Improve:  fleet.Dist{N: 98, Mean: 5.2, StdDev: 1.1, Min: 1.9, Max: 11.4, Q1: 4.4, Median: 5.1, Q3: 5.9, P90: 6.8},
			PerfLoss: fleet.Dist{N: 98, Mean: 17.1, StdDev: 2.0, Min: 11.0, Max: 22.5},
			Outliers: []fleet.Outlier{{Board: "GTX 680#0042", ImprovementPct: 11.4, Sigma: 5.6}},
		}},
	}
	s := FleetSummary(r)
	for _, want := range []string{
		"100 devices over GTX 680, GTX 480 (seed 42)",
		"Cells folded: 1400",
		"== backprop: 100 devices, 1400 cells (2 devices without baseline) ==",
		"(L-H)", "80", "18",
		"Energy savings at best pair",
		"mean   5.20",
		"Perf loss at best pair",
		"GTX 680#0042", "+5.6",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("FleetSummary missing %q:\n%s", want, s)
		}
	}
	// The box line renders between its min/max labels.
	if !strings.Contains(s, "[") || !strings.Contains(s, "+") {
		t.Errorf("box line not rendered:\n%s", s)
	}
}
