package report

import (
	"fmt"
	"strings"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/validity"
)

// Table1 renders Table I: specifications of the NVIDIA GPUs.
func Table1(boards []*arch.Spec) *Table {
	t := NewTable("TABLE I — Specifications of the NVIDIA GPUs",
		"GPU", "Architecture", "Cores", "Peak GFLOPS", "BW (GB/s)", "TDP (W)",
		"Core MHz (L/M/H)", "Mem MHz (L/M/H)")
	for _, s := range boards {
		t.AddRowf(s.Name, s.Generation.String(), s.TotalCores(), s.PeakGFLOPS,
			s.MemBandwidthGBs, s.TDPWatts,
			fmt.Sprintf("%.0f/%.0f/%.0f", s.CoreFreqsMHz[0], s.CoreFreqsMHz[1], s.CoreFreqsMHz[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", s.MemFreqsMHz[0], s.MemFreqsMHz[1], s.MemFreqsMHz[2]))
	}
	return t
}

// Table3 renders Table III: configurable frequency combinations.
func Table3(boards []*arch.Spec) *Table {
	headers := []string{"Pair"}
	for _, s := range boards {
		headers = append(headers, s.Name)
	}
	t := NewTable("TABLE III — Configurable frequency combinations", headers...)
	for ci := 2; ci >= 0; ci-- {
		for mi := 2; mi >= 0; mi-- {
			core, mem := arch.FreqLevel(ci), arch.FreqLevel(mi)
			row := []string{fmt.Sprintf("Core-%s, Mem-%s", core, mem)}
			for _, s := range boards {
				if s.PairValid(core, mem) {
					row = append(row, "yes")
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Table4 renders Table IV: the best frequency pairs for power efficiency.
// results maps board name → sweep results in benchmark order. tr, when
// non-nil, is the campaign's triage engine: a best-pair claim prints only
// when the "table4" bench verdict is VALID — a cell the triage judged an
// INFRA_FLAKE or MODEL_FAILURE renders "n/a (unstable)" even if a
// plausible-looking best pair survived. A nil tr keeps the classic
// single-run behavior (unstable means the sweep itself was quarantined).
func Table4(boards []*arch.Spec, results map[string][]*characterize.BenchResult, tr *validity.Triage) *Table {
	headers := []string{"Benchmark"}
	for _, s := range boards {
		headers = append(headers, s.Name)
	}
	t := NewTable("TABLE IV — Best frequency pairs for power efficiency", headers...)
	if len(boards) == 0 {
		return t
	}
	ref := results[boards[0].Name]
	for i, r := range ref {
		row := []string{r.Benchmark}
		for _, s := range boards {
			rs := results[s.Name]
			if i < len(rs) {
				// A cell whose sweep was quarantined by the fault harness
				// has no best pair — report it as unstable rather than
				// inventing one. The triage verdict extends the same rule
				// to cells that measured but failed the validity gate.
				best := rs[i].Best()
				if best != nil && tr != nil {
					if v, ok := tr.BenchVerdict("table4", s.Name, rs[i].Benchmark); ok && v.Class != validity.Valid {
						best = nil
					}
				}
				if best != nil {
					row = append(row, best.Pair.String())
				} else {
					row = append(row, "n/a (unstable)")
				}
			} else {
				row = append(row, "?")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4 renders the power-efficiency improvement of the best configuration
// (Fig. 4) as per-benchmark bars plus the per-board average.
func Fig4(boards []*arch.Spec, results map[string][]*characterize.BenchResult) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — Power-efficiency improvement with the best configuration\n")
	for _, s := range boards {
		rs := results[s.Name]
		b.WriteString(fmt.Sprintf("\n%s (mean %.1f%%)\n", s.Name, characterize.MeanImprovementPct(rs)))
		for _, r := range rs {
			if r.Best() == nil || r.Default() == nil {
				b.WriteString(fmt.Sprintf("  %-22s %6s  (unstable — no measurement)\n", r.Benchmark, "n/a"))
				continue
			}
			imp := r.ImprovementPct()
			b.WriteString(fmt.Sprintf("  %-22s %6.1f%% %s\n", r.Benchmark, imp, Bar(imp/80, 40)))
		}
	}
	return b.String()
}

// FigCurves renders a Figs. 1–3 panel: normalized performance and power
// efficiency against the core clock, one line per memory level.
func FigCurves(title string, spec *arch.Spec, curves []characterize.Curve) *Table {
	t := NewTable(title,
		"Mem level", "Mem MHz", "Core MHz", "Perf (vs H-H)", "Efficiency (vs H-H)")
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRowf("Mem-"+c.MemLevel.String(), c.MemMHz, p.CoreMHz, p.Perf, p.Efficiency)
		}
	}
	return t
}

// Table56 renders Tables V and VI: adjusted R² of the power and performance
// models per board.
func Table56(r2 map[string][2]float64, boards []*arch.Spec) *Table {
	t := NewTable("TABLES V & VI — Adjusted R² of the unified models",
		"GPU", "Power model R̄²", "Performance model R̄²")
	for _, s := range boards {
		v := r2[s.Name]
		t.AddRowf(s.Name, fmt.Sprintf("%.2f", v[0]), fmt.Sprintf("%.2f", v[1]))
	}
	return t
}

// Table78 renders Tables VII and VIII: average prediction errors.
func Table78(evals map[string][2]*core.Eval, boards []*arch.Spec) *Table {
	t := NewTable("TABLES VII & VIII — Average prediction error of the unified models",
		"GPU", "Power err [%]", "Power err [W]", "Time err [%]")
	for _, s := range boards {
		v := evals[s.Name]
		t.AddRowf(s.Name,
			fmt.Sprintf("%.1f", v[0].MeanAbsPct),
			fmt.Sprintf("%.1f", v[0].MeanAbsRaw),
			fmt.Sprintf("%.1f", v[1].MeanAbsPct))
	}
	return t
}

// Fig56 renders the per-benchmark error distribution of one model (Figs. 5
// and 6): benchmarks sorted by error, as in the paper's x-axis.
func Fig56(title string, errs []core.BenchmarkError) *Table {
	t := NewTable(title, "Benchmark", "Mean |error| %", "")
	maxErr := 1.0
	for _, e := range errs {
		if e.MeanPct > maxErr {
			maxErr = e.MeanPct
		}
	}
	for _, e := range errs {
		t.AddRow(e.Benchmark, fmt.Sprintf("%.1f", e.MeanPct), Bar(e.MeanPct/maxErr, 30))
	}
	return t
}

// Fig78 renders the explanatory-variable sweep (Figs. 7 and 8).
func Fig78(title string, points []core.SweepPoint) *Table {
	t := NewTable(title, "Variables", "Adjusted R²", "Mean |error| %")
	for _, p := range points {
		t.AddRowf(p.Vars, fmt.Sprintf("%.3f", p.AdjR2), fmt.Sprintf("%.1f", p.MeanAbsPct))
	}
	return t
}

// Fig910 renders the per-pair vs unified comparison (Figs. 9 and 10) as
// box-and-whisker lines over the percentage-error axis.
func Fig910(title string, cols []core.PairEval) string {
	var hi float64
	for _, c := range cols {
		if c.Box.Max > hi {
			hi = c.Box.Max
		}
	}
	if hi == 0 {
		hi = 1
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(fmt.Sprintf("%-9s %-50s %s\n", "model", fmt.Sprintf("|error|%% in [0, %.0f]", hi), "median"))
	for _, c := range cols {
		box := c.Box
		b.WriteString(fmt.Sprintf("%-9s %s %6.1f%%\n", c.Label,
			BoxLine(box.Min, box.Q1, box.Median, box.Q3, box.Max, 0, hi, 50), box.Median))
	}
	return b.String()
}

// Fig11 renders the per-variable influence breakdown of one model.
func Fig11(title string, infl []core.Influence) *Table {
	t := NewTable(title, "Variable", "Influence share", "")
	for _, f := range infl {
		t.AddRow(f.Variable, fmt.Sprintf("%.1f%%", f.Share*100), Bar(f.Share, 30))
	}
	return t
}

// ValidPairsLine summarizes a board's Table III row set, e.g. for logs.
func ValidPairsLine(spec *arch.Spec) string {
	var parts []string
	for _, p := range clock.ValidPairs(spec) {
		parts = append(parts, p.String())
	}
	return spec.Name + ": " + strings.Join(parts, " ")
}
