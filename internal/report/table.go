// Package report renders the reproduction's tables and figures. Every
// artifact of the paper (Tables I–VIII, Figs. 1–11) has a builder here that
// turns the harness results into an ASCII table and a CSV series, shared by
// the cmd/ tools and the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except float64, which uses %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
//
//gpulint:deterministic
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table, with the
// title as a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**" + t.Title + "**\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
//
//gpulint:deterministic
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar of the given fraction of width (the
// Fig. 4 / Fig. 11 bar-chart form). Fractions are clamped to [0, 1].
func Bar(fraction float64, width int) string {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := int(fraction*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// BoxLine renders a five-number summary as an ASCII box-and-whisker line
// over [lo, hi] (the Figs. 9/10 form):  |----[==|==]------|
func BoxLine(min, q1, median, q3, max, lo, hi float64, width int) string {
	if hi <= lo || width < 10 {
		return strings.Repeat(" ", width)
	}
	pos := func(v float64) int {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(width-1))
	}
	out := []byte(strings.Repeat(" ", width))
	for i := pos(min); i <= pos(max); i++ {
		out[i] = '-'
	}
	for i := pos(q1); i <= pos(q3); i++ {
		out[i] = '='
	}
	out[pos(min)] = '|'
	out[pos(max)] = '|'
	out[pos(q1)] = '['
	out[pos(q3)] = ']'
	out[pos(median)] = '+'
	return string(out)
}
