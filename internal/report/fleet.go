package report

import (
	"fmt"
	"strings"

	"gpuperf/internal/fleet"
)

// FleetSummary renders a fleet campaign report: the population header,
// per-benchmark best-pair tallies, the improvement distribution as a
// box-and-whisker line over the population range, per-pair energy
// means, and flagged outlier devices. Pure function of the Report —
// the fleet byte-identity CI job cmp's this exact text across shard
// counts.
func FleetSummary(r *fleet.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet campaign: %d devices over %s (seed %d)\n",
		r.Devices, strings.Join(r.BaseBoards, ", "), r.Seed)
	fmt.Fprintf(&b, "Jitter: %s\n", r.Jitter)
	fmt.Fprintf(&b, "Cells folded: %d\n", r.Cells)

	for _, br := range r.Benches {
		fmt.Fprintf(&b, "\n== %s: %d devices, %d cells", br.Bench, br.Devices, br.Cells)
		if br.NoBaseline > 0 {
			fmt.Fprintf(&b, " (%d devices without baseline)", br.NoBaseline)
		}
		b.WriteString(" ==\n")

		if len(br.BestPairs) > 0 {
			t := NewTable("Best pair across the population", "pair", "devices", "share")
			for _, p := range br.BestPairs {
				frac := 0.0
				if br.Devices > 0 {
					frac = float64(p.Devices) / float64(br.Devices)
				}
				t.AddRow(p.Pair, fmt.Sprintf("%d", p.Devices),
					fmt.Sprintf("%5.1f%% %s", 100*frac, Bar(frac, 24)))
			}
			b.WriteString(t.String())
		}

		if br.Improve.N > 0 {
			d := br.Improve
			fmt.Fprintf(&b, "Energy savings at best pair, %% over default (n=%d):\n", d.N)
			fmt.Fprintf(&b, "  mean %6.2f  sd %5.2f  min %6.2f  q1 %6.2f  med %6.2f  q3 %6.2f  p90 %6.2f  max %6.2f\n",
				d.Mean, d.StdDev, d.Min, d.Q1, d.Median, d.Q3, d.P90, d.Max)
			fmt.Fprintf(&b, "  %6.2f %s %6.2f\n", d.Min, BoxLine(d.Min, d.Q1, d.Median, d.Q3, d.Max, d.Min, d.Max, 48), d.Max)
			p := br.PerfLoss
			fmt.Fprintf(&b, "Perf loss at best pair, %%: mean %.2f  sd %.2f  range [%.2f, %.2f]\n",
				p.Mean, p.StdDev, p.Min, p.Max)
		}

		if len(br.Pairs) > 0 {
			t := NewTable("Population means per pair", "pair", "cells", "quar", "time s", "watts", "energy J", "sd(E)")
			for _, p := range br.Pairs {
				t.AddRow(p.Pair, fmt.Sprintf("%d", p.Cells), fmt.Sprintf("%d", p.Quarantined),
					fmt.Sprintf("%.4f", p.MeanTimeS), fmt.Sprintf("%.2f", p.MeanWatts),
					fmt.Sprintf("%.4f", p.MeanEnergyJ), fmt.Sprintf("%.4f", p.StdEnergyJ))
			}
			b.WriteString(t.String())
		}

		if len(br.Outliers) > 0 {
			t := NewTable("Outlier devices (beyond 3σ)", "device", "savings %", "σ")
			for _, o := range br.Outliers {
				t.AddRow(o.Board, fmt.Sprintf("%.2f", o.ImprovementPct), fmt.Sprintf("%+.1f", o.Sigma))
			}
			b.WriteString(t.String())
		}
	}
	return b.String()
}
