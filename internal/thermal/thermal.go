// Package thermal adds a first-order thermal model on top of the power
// traces the simulator produces — an extension beyond the paper, which
// metered short (≤ tens of seconds) runs where silicon temperature barely
// moved. For sustained workloads the feedback matters: dissipated power
// heats the die through the cooler's thermal resistance, hot silicon leaks
// more (raising power further), and past the throttle point a real board
// duty-cycles its clocks to survive.
//
// The model is a single-node RC network:
//
//	C · dT/dt = P(t) − (T − T_ambient)/R
//
// integrated over a wall-power trace with leakage feedback
// P(T) = P_trace + L₀·k·(T − T₀), and an optional throttle ceiling that
// stretches execution once the sustainable power is exceeded.
package thermal

import (
	"errors"
	"math"

	"gpuperf/internal/meter"
)

// Params describes one board's thermal environment.
type Params struct {
	AmbientC      float64 // air temperature, °C
	ResistanceCW  float64 // junction-to-air thermal resistance, °C/W
	CapacitanceJC float64 // lumped thermal capacitance, J/°C
	ThrottleC     float64 // junction throttle point, °C (0 disables)
	// LeakWattsAt25 is the board's nominal leakage power at 25 °C; the
	// temperature-dependent surcharge is applied on top of the trace.
	LeakWattsAt25 float64
	// LeakPerDegree is the fractional leakage increase per °C above 25
	// (subthreshold leakage roughly doubles every 25–30 °C; ~0.03/°C).
	LeakPerDegree float64
}

// DefaultParams returns a plausible dual-slot cooler configuration scaled
// by the board's leakage.
func DefaultParams(leakWatts float64) Params {
	return Params{
		AmbientC:      27,
		ResistanceCW:  0.28,
		CapacitanceJC: 350,
		ThrottleC:     97,
		LeakWattsAt25: leakWatts,
		LeakPerDegree: 0.03,
	}
}

// Result summarizes a thermal simulation over one trace.
type Result struct {
	// FinalC and MaxC are junction temperatures, °C.
	FinalC, MaxC float64
	// ExtraLeakJoules is the energy added by temperature-dependent
	// leakage over the run.
	ExtraLeakJoules float64
	// ThrottledSeconds is wall time spent at the throttle ceiling.
	ThrottledSeconds float64
	// StretchedDuration is the run duration after throttling (equals the
	// trace duration when the board never throttles).
	StretchedDuration float64
	// AvgWatts is the effective average wall power including the leakage
	// surcharge.
	AvgWatts float64
}

// SteadyStateC returns the equilibrium temperature under constant power
// (ignoring the leakage feedback's own heating, solved exactly below).
func (p Params) SteadyStateC(watts float64) float64 {
	// T = Ta + R·(P + L0·k·(T−25))  →  solve linearly for T.
	denom := 1 - p.ResistanceCW*p.LeakWattsAt25*p.LeakPerDegree
	if denom <= 0 {
		return math.Inf(1) // thermal runaway
	}
	return (p.AmbientC + p.ResistanceCW*(watts-p.LeakWattsAt25*p.LeakPerDegree*25)) / denom
}

// Simulate integrates the thermal model over a power trace starting from
// startC (use Params.AmbientC for a cold start). The step size is the
// meter's 50 ms period.
func Simulate(trace meter.Trace, p Params, startC float64) (*Result, error) {
	if p.CapacitanceJC <= 0 || p.ResistanceCW <= 0 {
		return nil, errors.New("thermal: non-positive RC parameters")
	}
	const dt = meter.DefaultSamplePeriod
	res := &Result{FinalC: startC, MaxC: startC}
	temp := startC
	var joules float64
	var duration float64

	for _, seg := range trace {
		remaining := seg.Duration
		for remaining > 0 {
			step := dt
			if step > remaining {
				step = remaining
			}
			leak := p.LeakWattsAt25 * p.LeakPerDegree * (temp - 25)
			if leak < 0 {
				leak = 0
			}
			power := seg.Watts + leak

			stretch := 1.0
			if p.ThrottleC > 0 && temp >= p.ThrottleC {
				// Duty-cycle: the board can only dissipate the power that
				// holds the junction at the ceiling; execution stretches
				// by the surplus ratio.
				sustainable := (p.ThrottleC-p.AmbientC)/p.ResistanceCW + 0 // watts at ceiling
				if power > sustainable && sustainable > 0 {
					stretch = power / sustainable
					power = sustainable
				}
				res.ThrottledSeconds += step * stretch
			}

			// Explicit Euler is fine at 50 ms steps: the RC constant is
			// ~R·C ≈ 100 s, three orders larger.
			dT := (power - (temp-p.AmbientC)/p.ResistanceCW) / p.CapacitanceJC * step * stretch
			temp += dT
			if temp > res.MaxC {
				res.MaxC = temp
			}
			res.ExtraLeakJoules += leak * step * stretch
			joules += power * step * stretch
			duration += step * stretch
			remaining -= step
		}
	}
	res.FinalC = temp
	res.StretchedDuration = duration
	if duration > 0 {
		res.AvgWatts = joules / duration
	}
	return res, nil
}
