package thermal

import (
	"math"
	"testing"

	"gpuperf/internal/meter"
)

func params() Params {
	p := DefaultParams(40)
	p.ThrottleC = 0 // most tests want no throttling
	return p
}

func TestColdIdleStaysAmbient(t *testing.T) {
	p := params()
	p.LeakWattsAt25 = 0
	res, err := Simulate(meter.Trace{{Duration: 10, Watts: 0}}, p, p.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalC-p.AmbientC) > 0.01 {
		t.Errorf("idle final temp %.2f °C, want ambient %.2f", res.FinalC, p.AmbientC)
	}
}

func TestHeatingApproachesSteadyState(t *testing.T) {
	p := params()
	const watts = 250.0
	want := p.SteadyStateC(watts)
	// 10 RC constants ≈ full settle.
	horizon := 10 * p.ResistanceCW * p.CapacitanceJC
	res, err := Simulate(meter.Trace{{Duration: horizon, Watts: watts}}, p, p.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalC-want) > 1 {
		t.Errorf("final %.1f °C, want steady state %.1f °C", res.FinalC, want)
	}
	if res.MaxC < res.FinalC-0.01 {
		t.Error("max below final on a monotone heat-up")
	}
}

func TestCoolingDecaysTowardAmbient(t *testing.T) {
	p := params()
	p.LeakWattsAt25 = 0
	res, err := Simulate(meter.Trace{{Duration: 200, Watts: 0}}, p, 90)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalC >= 90 {
		t.Error("no cooling under zero power")
	}
	if res.FinalC < p.AmbientC-0.01 {
		t.Error("cooled below ambient")
	}
	// After one RC constant the excess should fall to ~37%.
	rc := p.ResistanceCW * p.CapacitanceJC
	one, _ := Simulate(meter.Trace{{Duration: rc, Watts: 0}}, p, 90)
	wantExcess := (90 - p.AmbientC) * math.Exp(-1)
	if got := one.FinalC - p.AmbientC; math.Abs(got-wantExcess) > wantExcess*0.05 {
		t.Errorf("excess after 1·RC = %.1f °C, want ≈ %.1f °C", got, wantExcess)
	}
}

func TestLeakageFeedbackAddsEnergy(t *testing.T) {
	p := params()
	res, err := Simulate(meter.Trace{{Duration: 120, Watts: 200}}, p, p.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraLeakJoules <= 0 {
		t.Error("hot run added no leakage energy")
	}
	if res.AvgWatts <= 200 {
		t.Errorf("average power %.1f W should exceed the trace's 200 W", res.AvgWatts)
	}
	// Steady state with feedback sits above the no-feedback equilibrium.
	noFeedback := p.AmbientC + p.ResistanceCW*200
	if p.SteadyStateC(200) <= noFeedback {
		t.Error("leakage feedback should raise the equilibrium temperature")
	}
}

func TestThrottlingStretchesExecution(t *testing.T) {
	p := params()
	p.ThrottleC = 80
	// 400 W cannot be sustained at an 80 °C ceiling with 0.28 °C/W
	// ((80−27)/0.28 ≈ 189 W): the run must stretch and spend time
	// throttled.
	res, err := Simulate(meter.Trace{{Duration: 300, Watts: 400}}, p, p.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottledSeconds <= 0 {
		t.Fatal("never throttled at 400 W")
	}
	if res.StretchedDuration <= 300 {
		t.Errorf("duration %.1f s not stretched beyond the 300 s trace", res.StretchedDuration)
	}
	if res.MaxC > p.ThrottleC+1 {
		t.Errorf("temperature %.1f °C overshot the %.0f °C ceiling", res.MaxC, p.ThrottleC)
	}
}

func TestRunawayDetection(t *testing.T) {
	p := params()
	p.LeakPerDegree = 10 // absurd: R·L0·k > 1
	if !math.IsInf(p.SteadyStateC(100), 1) {
		t.Error("thermal runaway not reported as +Inf")
	}
}

func TestSimulateRejectsBadParams(t *testing.T) {
	for _, bad := range []Params{
		{ResistanceCW: 0, CapacitanceJC: 100},
		{ResistanceCW: 0.3, CapacitanceJC: 0},
	} {
		if _, err := Simulate(meter.Trace{{Duration: 1, Watts: 1}}, bad, 25); err == nil {
			t.Error("Simulate accepted bad params")
		}
	}
}

func TestShortTraceStepHandling(t *testing.T) {
	// Segments shorter than the 50 ms step must still integrate.
	p := params()
	res, err := Simulate(meter.Trace{{Duration: 0.01, Watts: 300}, {Duration: 0.02, Watts: 100}}, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.StretchedDuration <= 0.029 || res.StretchedDuration > 0.031 {
		t.Errorf("duration %.4f s, want 0.03 s", res.StretchedDuration)
	}
}
