package fastrng

import (
	"math/rand"
	"testing"
)

// The contract under test: for every seed, a Source's stream — raw and
// through every rand.Rand draw method the repository uses — is
// bit-identical to rand.NewSource(seed).

func testSeeds() []int64 {
	return []int64{
		0, 1, -1, 42, 89482311, 1<<31 - 1, 1 << 31, -(1 << 31),
		1<<62 + 12345, -(1<<62 + 12345), 7_777_777, -42,
	}
}

func TestRawStreamMatchesMathRand(t *testing.T) {
	for _, seed := range testSeeds() {
		ref := rand.NewSource(seed).(rand.Source64)
		got := New(seed)
		for i := 0; i < 2000; i++ {
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: Uint64 = %#x, want %#x", seed, i, g, w)
			}
		}
		// Int63 path, separately: it shares state with Uint64 but masks.
		ref = rand.NewSource(seed).(rand.Source64)
		got.Seed(seed)
		for i := 0; i < 2000; i++ {
			if g, w := got.Int63(), ref.Int63(); g != w {
				t.Fatalf("seed %d draw %d: Int63 = %#x, want %#x", seed, i, g, w)
			}
		}
	}
}

// TestRandDrawsMatchMathRand drives the draw methods the campaign stack
// actually uses (NormFloat64 for meter/profiler noise, Float64 and Intn
// for fault injection) through rand.Rand on both sources.
func TestRandDrawsMatchMathRand(t *testing.T) {
	for _, seed := range testSeeds() {
		ref := rand.New(rand.NewSource(seed))
		_, got := NewRand(seed)
		for i := 0; i < 1000; i++ {
			if g, w := got.NormFloat64(), ref.NormFloat64(); g != w {
				t.Fatalf("seed %d draw %d: NormFloat64 = %v, want %v", seed, i, g, w)
			}
			if g, w := got.Float64(), ref.Float64(); g != w {
				t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
			}
			if g, w := got.Intn(1<<20+7), ref.Intn(1<<20+7); g != w {
				t.Fatalf("seed %d draw %d: Intn = %d, want %d", seed, i, g, w)
			}
		}
	}
}

// TestReseedMatchesFreshSource pins the whole point of the package: an
// in-place Seed on a used source must restore the exact fresh-source
// stream, including after partial draws and under a live rand.Rand.
func TestReseedMatchesFreshSource(t *testing.T) {
	src, r := NewRand(1)
	for _, seed := range testSeeds() {
		// Desynchronize deliberately before reseeding.
		for i := 0; i < 17; i++ {
			r.NormFloat64()
		}
		src.Seed(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if g, w := r.NormFloat64(), ref.NormFloat64(); g != w {
				t.Fatalf("seed %d draw %d after reseed: %v, want %v", seed, i, g, w)
			}
		}
	}
}

func TestManySequentialSeeds(t *testing.T) {
	src := New(0)
	for seed := int64(-300); seed < 300; seed++ {
		src.Seed(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 50; i++ {
			if g, w := src.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: %#x, want %#x", seed, i, g, w)
			}
		}
	}
}

// TestSeedAllocates pins the zero-allocation property of in-place
// reseeding — the profiled win over rand.New(rand.NewSource(seed)).
func TestSeedAllocates(t *testing.T) {
	src := New(1)
	if n := testing.AllocsPerRun(100, func() { src.Seed(12345) }); n != 0 {
		t.Fatalf("Seed allocates %v objects per call, want 0", n)
	}
}

func BenchmarkSeedInPlace(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = rand.New(rand.NewSource(int64(i)))
	}
}
