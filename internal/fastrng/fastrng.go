// Package fastrng provides a reseedable drop-in replacement for the
// additive lagged-Fibonacci source behind math/rand.NewSource, emitting
// the exact same stream for every seed.
//
// Why it exists: the campaign engines reseed their noise source once per
// measurement cell (driver.Device.SeedScoped) so that every cell's noise
// stream is independent of sweep order, retries and worker count. With
// math/rand that discipline costs a fresh 4.9 KB rngSource allocation plus
// ~1800 sequential Lehmer steps per cell — profiled at >20% of a full
// reproduction, almost all of it in Seed. This package removes both costs
// while keeping the byte-identity contract intact:
//
//   - Source is reseeded in place — zero allocations per reseed.
//   - Seeding evaluates the same Lehmer chain in closed form,
//     x_j = 48271^j · x_0 mod 2³¹−1, from a precomputed table of
//     multiplier powers. The modular products are independent, so the
//     chain's ~1800 data-dependent steps become ~1800 pipelinable
//     multiply-reduce pairs.
//   - The generator state update (Uint64/Int63) replicates math/rand's
//     rngSource field for field, and the additive constants folded into
//     the seeded state (math/rand's unexported rngCooked table) are
//     recovered algebraically at init from the observable output stream
//     of rand.NewSource(1) — no constants are copied from the Go sources,
//     and any divergence fails the equivalence tests immediately.
//
// The stream equality is a hard contract, not an optimization detail:
// every golden artifact in this repository (seed-42 report, traces,
// metrics expositions) encodes noise drawn through rand.Rand from this
// stream. Tests in this package compare Int63/Uint64/Float64/NormFloat64
// streams against math/rand across many seeds.
//
// Caveat: a rand.Rand wrapping a Source may be reseeded through the
// Source while live — all rand.Rand draw methods are stateless between
// calls — except rand.Rand.Read, which buffers partial words internally.
// Nothing in this repository uses Read; new code must not start.
package fastrng

import "math/rand"

const (
	rngLen  = 607 // degree of the lagged-Fibonacci recurrence
	rngTap  = 273 // distance of the second tap
	lehmerM = 1<<31 - 1
	lehmerA = 48271
	// The seeding chain consumes 20 warm-up values plus three per state
	// word; the largest exponent used is 23 + 3·(rngLen−1).
	chainLen = 23 + 3*(rngLen-1)
)

// lehmerPow[j] = 48271^j mod 2³¹−1: the closed form of j steps of the
// MINSTD Lehmer chain math/rand seeds its state vector with.
var lehmerPow [chainLen + 1]uint64

// cooked mirrors math/rand's rngCooked table: the per-word additive
// constants XORed into the seeded state vector. Recovered at init (see
// recoverCooked); never copied from the math/rand sources.
var cooked [rngLen]uint64

func init() {
	lehmerPow[0] = 1
	for j := 1; j < len(lehmerPow); j++ {
		lehmerPow[j] = lehmerPow[j-1] * lehmerA % lehmerM
	}
	recoverCooked()
}

// recoverCooked reconstructs the additive constants from the output
// stream of the reference source. The first 607 outputs of a freshly
// seeded rngSource are o_k = vec[feed_k] + vec[tap_k] (int64 wraparound)
// with feed_k = (333−k) mod 607 and tap_k = (606−k) mod 607, and each
// position is overwritten for the first time exactly when it is the feed.
// Working through the index arithmetic:
//
//   - for k ∈ [273, 606] the tap was overwritten at step k−273, so
//     o_k = vec₀[feed_k] + o_{k−273} — yielding the original words at
//     positions [0,60] ∪ [334,606];
//   - for k ∈ [0, 272] both operands are original:
//     o_k = vec₀[333−k] + vec₀[606−k], and 606−k is already known from
//     the first group — yielding positions [61, 333].
//
// The seeded words are vec₀[i] = int64(u_i ^ cooked[i]) where u_i is the
// closed-form Lehmer chain of the seed, so XORing u_i back out exposes
// the constants.
func recoverCooked() {
	ref := rand.NewSource(1).(rand.Source64)
	var o, vec0 [rngLen]int64
	for k := range o {
		o[k] = int64(ref.Uint64())
	}
	for k := rngTap; k < rngLen; k++ {
		vec0[(333-k+rngLen)%rngLen] = o[k] - o[k-rngTap]
	}
	for k := 0; k < rngTap; k++ {
		vec0[333-k] = o[k] - vec0[606-k]
	}
	x := seedWord(1)
	for i := 0; i < rngLen; i++ {
		j := 21 + 3*i
		u := seedChain(x, j)<<40 ^ seedChain(x, j+1)<<20 ^ seedChain(x, j+2)
		cooked[i] = u ^ uint64(vec0[i])
	}
}

// seedWord normalizes a seed exactly as math/rand does before the Lehmer
// chain starts.
func seedWord(seed int64) uint64 {
	seed %= lehmerM
	if seed < 0 {
		seed += lehmerM
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// seedChain returns the j-th Lehmer iterate of x0 in closed form:
// x0 · 48271^j mod 2³¹−1. Both factors are below 2³¹, so the product
// fits a uint64 exactly.
func seedChain(x0 uint64, j int) uint64 {
	return x0 * lehmerPow[j] % lehmerM
}

// Source is a reseedable math/rand-compatible random source: for every
// seed, its Int63/Uint64 stream is bit-identical to
// rand.NewSource(seed). The zero value is not seeded; call Seed first
// (New does). Not goroutine-safe, exactly like rand.NewSource.
type Source struct {
	tap, feed int
	vec       [rngLen]int64
}

var (
	_ rand.Source   = (*Source)(nil)
	_ rand.Source64 = (*Source)(nil)
)

// New returns a seeded Source.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// NewRand returns a seeded Source and a rand.Rand drawing from it.
// Reseed through the Source to reuse both allocations; see the package
// comment for the rand.Rand.Read caveat.
func NewRand(seed int64) (*Source, *rand.Rand) {
	s := New(seed)
	return s, rand.New(s)
}

// Seed resets the source to the exact state rand.NewSource(seed) starts
// in, reusing the receiver's storage. The stdlib walks the Lehmer chain
// sequentially (20 warm-up steps, then three per state word); the closed
// form evaluates the same iterates independently.
func (s *Source) Seed(seed int64) {
	s.tap, s.feed = 0, rngLen-rngTap
	x := seedWord(seed)
	for i := 0; i < rngLen; i++ {
		j := 21 + 3*i
		u := seedChain(x, j)<<40 ^ seedChain(x, j+1)<<20 ^ seedChain(x, j+2) ^ cooked[i]
		s.vec[i] = int64(u)
	}
}

// Uint64 advances the lagged-Fibonacci recurrence one step, replicating
// math/rand's rngSource.Uint64 exactly (including int64 wraparound).
func (s *Source) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the low 63 bits of the next word, like math/rand.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}
