// Package collector is the daemon's live power-telemetry sink: it owns
// the fleet's idle power model (one booted simulated device per served
// board), implements driver.PowerFanout, and publishes per-device,
// per-scope power gauges and histograms into the daemon's shared metrics
// registry — the families a /metrics scrape reads while campaigns run.
//
// The collector is strictly live-side: campaigns stream their samples
// through it, but nothing in the artifact path (journals, reports,
// recorded metrics of a CLI run) ever depends on it. Every handle is
// registered in New — the registry is never written from an HTTP
// handler (the scrape-safety contract gpulint's daemoncheck enforces).
package collector

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gpuperf/internal/driver"
	"gpuperf/internal/obs"
	"gpuperf/internal/power"
)

// DefaultRetention is the per-(device, scope) ring-buffer depth: at the
// meter's 50 ms cadence, 1200 samples is one minute of history.
const DefaultRetention = 1200

// wattBuckets spans idle Tesla boards (~30 W static) through a loaded
// module (paper boards peak below ~400 W at the wall; the GPU domains
// sit below that).
var wattBuckets = []float64{25, 50, 75, 100, 150, 200, 300, 400}

// deviceState is one served board's live-telemetry state.
type deviceState struct {
	dev   *driver.Device
	idle  power.Breakdown
	gauge map[power.Scope]*obs.FloatGauge
	hist  map[power.Scope]*obs.Histogram

	samples *obs.Counter // samples received from campaigns
	seen    atomic.Int64 // samples since boot (idle reseed heartbeat)

	mu   sync.Mutex
	ring map[power.Scope][]float64 // fixed-capacity history, oldest first
}

// Collector fans campaign power samples out to the live exposition with
// bounded retention. Safe for concurrent use from every sweep worker.
type Collector struct {
	devices   map[string]*deviceState
	order     []string     // board names in fleet order
	dropped   *obs.Counter // samples from boards outside the fleet
	retention int

	stop chan struct{}
	done chan struct{}
}

// New boots one simulated device per named board and registers the
// fleet's metric families in reg: gpuperf_power_watts{device,scope}
// (gauge, watts), gpuperf_power_watts_hist{device,scope} (histogram) and
// gpuperf_power_samples_total{device} / gpuperf_power_samples_dropped_total
// (counters). retention bounds the per-(device, scope) sample history
// (≤ 0: DefaultRetention). The gauges are seeded synchronously with each
// board's idle breakdown, so the first scrape already carries every
// family for every device.
func New(reg *obs.Registry, boardNames []string, retention int) (*Collector, error) {
	if reg == nil {
		return nil, fmt.Errorf("collector: nil registry")
	}
	if len(boardNames) == 0 {
		return nil, fmt.Errorf("collector: empty fleet")
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	c := &Collector{
		devices:   make(map[string]*deviceState, len(boardNames)),
		retention: retention,
		dropped: reg.Counter("gpuperf_power_samples_dropped_total",
			"power samples from devices outside the served fleet"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, name := range boardNames {
		if _, ok := c.devices[name]; ok {
			return nil, fmt.Errorf("collector: duplicate board %q", name)
		}
		dev, err := driver.OpenBoard(name)
		if err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
		ds := &deviceState{
			dev:   dev,
			idle:  dev.IdleScopePower(),
			gauge: make(map[power.Scope]*obs.FloatGauge, 3),
			hist:  make(map[power.Scope]*obs.Histogram, 3),
			ring:  make(map[power.Scope][]float64, 3),
			samples: reg.Counter("gpuperf_power_samples_total",
				"power samples received from campaign runs", obs.L("device", name)),
		}
		for _, sc := range power.Scopes() {
			lbls := []obs.Label{obs.L("device", name), obs.L("scope", string(sc))}
			ds.gauge[sc] = reg.FloatGauge("gpuperf_power_watts",
				"last observed power by device and scope, watts", lbls...)
			ds.hist[sc] = reg.Histogram("gpuperf_power_watts_hist",
				"distribution of observed power by device and scope, watts",
				wattBuckets, lbls...)
			ds.ring[sc] = make([]float64, 0, retention)
			ds.gauge[sc].Set(ds.idle.Scope(sc)) // idle until the first sample
		}
		c.devices[name] = ds
		c.order = append(c.order, name)
	}
	return c, nil
}

// Devices returns the fleet's board names in serving order.
func (c *Collector) Devices() []string {
	return append([]string(nil), c.order...)
}

// SamplePower implements driver.PowerFanout: one scope-tagged reading
// from a campaign's metered run. Samples from boards outside the fleet
// are counted and dropped (a campaign may sweep boards the daemon does
// not export telemetry for).
func (c *Collector) SamplePower(device string, scopes power.Breakdown) {
	ds, ok := c.devices[device]
	if !ok {
		c.dropped.Inc()
		return
	}
	ds.samples.Inc()
	ds.seen.Add(1)
	ds.mu.Lock()
	for _, sc := range power.Scopes() {
		w := scopes.Scope(sc)
		ds.gauge[sc].Set(w)
		ds.hist[sc].Observe(w)
		r := ds.ring[sc]
		if len(r) == cap(r) {
			copy(r, r[1:])
			r = r[:len(r)-1]
		}
		ds.ring[sc] = append(r, w)
	}
	ds.mu.Unlock()
}

// Recent returns up to the retention window of the device's most recent
// samples for one scope, oldest first. Nil for unknown devices.
func (c *Collector) Recent(device string, sc power.Scope) []float64 {
	ds, ok := c.devices[device]
	if !ok {
		return nil
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return append([]float64(nil), ds.ring[sc]...)
}

// Idle returns the device's modeled idle power breakdown (zero value for
// unknown devices).
func (c *Collector) Idle(device string) power.Breakdown {
	if ds, ok := c.devices[device]; ok {
		return ds.idle
	}
	return power.Breakdown{}
}

// Start launches the idle heartbeat: every interval, devices that saw no
// campaign sample since the previous tick have their gauges re-seeded to
// the idle breakdown, so a fleet with no running campaign reports idle
// power rather than the last run's final reading forever. Call Stop to
// end the goroutine; Start may be called at most once.
func (c *Collector) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	last := make(map[string]int64, len(c.devices))
	go func() {
		defer close(c.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				for name, ds := range c.devices {
					if n := ds.seen.Load(); n != last[name] {
						last[name] = n
						continue
					}
					ds.mu.Lock()
					for _, sc := range power.Scopes() {
						ds.gauge[sc].Set(ds.idle.Scope(sc))
					}
					ds.mu.Unlock()
				}
			}
		}
	}()
}

// Stop ends the idle heartbeat and waits for it to exit. Safe to call
// once after Start; a collector that was never started must not call it.
func (c *Collector) Stop() {
	close(c.stop)
	<-c.done
}
