package collector

import (
	"strings"
	"testing"
	"time"

	"gpuperf/internal/obs"
	"gpuperf/internal/power"
)

// TestNewSeedsIdleGaugesForEveryScope: right after construction, before
// any campaign sample, the exposition carries gpuperf_power_watts for
// all three scopes on every device, at the idle breakdown.
func TestNewSeedsIdleGaugesForEveryScope(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(reg, []string{"GTX 480", "GTX 680"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, dev := range []string{"GTX 480", "GTX 680"} {
		idle := c.Idle(dev)
		if idle.GPU <= 0 || idle.Memory <= 0 {
			t.Fatalf("%s: idle breakdown not positive: %+v", dev, idle)
		}
		for _, sc := range power.Scopes() {
			want := `gpuperf_power_watts{device="` + dev + `",scope="` + string(sc) + `"}`
			if !strings.Contains(got, want) {
				t.Errorf("exposition missing %s:\n%s", want, got)
			}
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(got)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestSamplePowerUpdatesGaugesHistogramsAndRing covers the sample path:
// known devices update all three scopes and the bounded ring; unknown
// devices are counted and dropped.
func TestSamplePowerUpdatesGaugesHistogramsAndRing(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(reg, []string{"GTX 480"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.SamplePower("GTX 480", power.Breakdown{GPU: 100 + float64(i), Memory: 40})
	}
	c.SamplePower("Radeon HD 5870", power.Breakdown{GPU: 1, Memory: 1})

	ring := c.Recent("GTX 480", power.ScopeGPU)
	if len(ring) != 4 {
		t.Fatalf("retention not bounded: %d samples kept, want 4", len(ring))
	}
	if ring[0] != 106 || ring[3] != 109 {
		t.Fatalf("ring not oldest-first window: %v", ring)
	}
	if mod := c.Recent("GTX 480", power.ScopeModule); mod[3] != 149 {
		t.Fatalf("module ring = %v, want last 149", mod)
	}
	if c.Recent("nope", power.ScopeGPU) != nil {
		t.Fatal("unknown device returned a ring")
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`gpuperf_power_watts{device="GTX 480",scope="gpu"} 109`,
		`gpuperf_power_watts{device="GTX 480",scope="memory"} 40`,
		`gpuperf_power_watts{device="GTX 480",scope="module"} 149`,
		`gpuperf_power_samples_total{device="GTX 480"} 10`,
		`gpuperf_power_samples_dropped_total 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if !strings.Contains(got, `gpuperf_power_watts_hist_count{device="GTX 480",scope="gpu"} 10`) {
		t.Errorf("histogram count missing:\n%s", got)
	}
}

// TestIdleHeartbeatReseedsQuietDevices: after two quiet ticks the gauge
// returns to idle; a device that keeps sampling is left alone.
func TestIdleHeartbeatReseedsQuietDevices(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(reg, []string{"GTX 480"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.SamplePower("GTX 480", power.Breakdown{GPU: 200, Memory: 80})
	c.Start(time.Millisecond)
	defer c.Stop()

	idle := c.Idle("GTX 480")
	deadline := time.After(5 * time.Second)
	for {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(b.String(),
			`gpuperf_power_watts{device="GTX 480",scope="module"} `+trimFloat(idle.Module())) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("gauge never returned to idle %.6f:\n%s", idle.Module(), b.String())
		case <-time.After(time.Millisecond):
		}
	}
}

// trimFloat renders a watts value the way the micro-unit gauge does.
func trimFloat(v float64) string {
	reg := obs.NewRegistry()
	reg.FloatGauge("x", "x").Set(v)
	var b strings.Builder
	_ = reg.WriteText(&b)
	line := strings.Split(b.String(), "\n")[2] // HELP, TYPE, series
	return strings.TrimPrefix(line, "x ")
}

// TestNewRejectsBadFleets pins the constructor's validation.
func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(nil, []string{"GTX 480"}, 0); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(obs.NewRegistry(), nil, 0); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(obs.NewRegistry(), []string{"GTX 480", "GTX 480"}, 0); err == nil {
		t.Error("duplicate board accepted")
	}
	if _, err := New(obs.NewRegistry(), []string{"Voodoo 2"}, 0); err == nil {
		t.Error("unknown board accepted")
	}
}
