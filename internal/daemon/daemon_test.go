package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuperf/internal/obs"
	"gpuperf/internal/power"
	"gpuperf/internal/session"
	"gpuperf/internal/workloads"
)

func newTestServer(t *testing.T, boards ...string) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := New(Config{Boards: boards, DataDir: dir, Retention: 256, SampleInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts, dir
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func postCampaign(t *testing.T, base string, req CampaignRequest) (int, CampaignStatus, string) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status decode: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, st, string(body)
}

func waitState(t *testing.T, base, id string, want ...string) CampaignStatus {
	t.Helper()
	deadline := time.After(2 * time.Minute)
	for {
		code, body := get(t, base+"/api/v1/campaigns/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var st CampaignStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State == StateFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		select {
		case <-deadline:
			t.Fatalf("campaign %s stuck in %q", id, st.State)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestDaemonEndToEnd is the tentpole acceptance test: a campaign
// submitted over HTTP runs to completion while /metrics is scraped
// concurrently (run under -race in CI), the live exposition carries
// gpuperf_power_watts for all three scopes, the status JSON carries
// progress and triage verdicts, and the checkpoint journal is
// byte-identical to the same campaign run directly through a
// session.Session at the same seed.
func TestDaemonEndToEnd(t *testing.T) {
	srv, ts, dir := newTestServer(t, "GTX 480")

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz: %d", code)
	}

	// Before any campaign: the exposition already carries every scope of
	// every device, at idle.
	_, exp := get(t, ts.URL+"/metrics")
	for _, sc := range power.Scopes() {
		want := `gpuperf_power_watts{device="GTX 480",scope="` + string(sc) + `"}`
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %s:\n%s", want, exp)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(exp)); err != nil {
		t.Fatalf("idle exposition invalid: %v", err)
	}

	// Scrape continuously while the campaign runs.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	scrapeErr := make(chan error, 1)
	go func(stop <-chan struct{}) {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeErr <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err != nil {
				scrapeErr <- err
				return
			}
			if verr := obs.ValidateExposition(bytes.NewReader(body)); verr != nil {
				scrapeErr <- fmt.Errorf("mid-campaign exposition invalid: %w", verr)
				return
			}
		}
	}(stopScrape)

	req := CampaignRequest{
		Seed:       123,
		Workers:    1,
		Boards:     []string{"GTX 480"},
		Benchmarks: []string{"backprop", "gaussian"},
	}
	code, st, body := postCampaign(t, ts.URL, req)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	final := waitState(t, ts.URL, st.ID, StateCompleted)
	close(stopScrape)
	scrapeWG.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	if final.Progress.Planned == 0 || final.Progress.Done != final.Progress.Planned {
		t.Fatalf("final progress: %+v", final.Progress)
	}
	if final.Triage == nil || !final.Triage.Publishable || final.Triage.Counts["VALID"] == 0 {
		t.Fatalf("triage: %+v", final.Triage)
	}

	// The post-campaign exposition carries campaign samples and all three
	// scopes.
	_, exp = get(t, ts.URL+"/metrics")
	if !strings.Contains(exp, `gpuperf_power_samples_total{device="GTX 480"}`) {
		t.Fatalf("no power samples recorded:\n%s", exp)
	}
	if samples := srv.Collector().Recent("GTX 480", power.ScopeModule); len(samples) == 0 {
		t.Fatal("collector retained no samples")
	}

	// Rendered report over HTTP.
	code, rep := get(t, ts.URL+"/api/v1/campaigns/"+st.ID+"/report")
	if code != 200 || !strings.Contains(rep, "TABLE IV") {
		t.Fatalf("report: %d\n%s", code, rep)
	}
	code, tri := get(t, ts.URL+"/api/v1/campaigns/"+st.ID+"/triage")
	if code != 200 || !strings.Contains(tri, `"cohort"`) {
		t.Fatalf("triage endpoint: %d\n%s", code, tri)
	}

	// Byte-identity: the campaign's journal equals a direct session run
	// at the same seed and configuration.
	refPath := filepath.Join(t.TempDir(), "ref.journal")
	cfg := session.DefaultConfig()
	cfg.Seed = 123
	cfg.Workers = 1
	cfg.Boards = []string{"GTX 480"}
	cfg.Checkpoint = refPath
	sess, err := session.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	benches := []*workloads.Benchmark{workloads.ByName("backprop"), workloads.ByName("gaussian")}
	if _, err := sess.Repeat(context.Background(), benches); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "campaign-"+st.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatalf("campaign journal diverges from direct session run:\n--- daemon (%d bytes) ---\n%s\n--- direct (%d bytes) ---\n%s",
			len(got), got, len(ref), ref)
	}

	// /api/v1/power reports idle and recent samples per scope.
	code, pw := get(t, ts.URL+"/api/v1/power")
	if code != 200 || !strings.Contains(pw, `"GTX 480"`) || !strings.Contains(pw, `"module"`) {
		t.Fatalf("power endpoint: %d\n%s", code, pw)
	}
}

// TestDaemonRejectsBadRequests pins the 400-path validation.
func TestDaemonRejectsBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, "GTX 480")
	cases := []CampaignRequest{
		{NoCache: true},
		{Benchmarks: []string{"no-such-bench"}},
		{Boards: []string{"Voodoo 2"}},
		{Boards: []string{"GTX 680"}}, // valid board, outside the fleet
		{Kind: "explode"},
		{Faults: "bogus:spec"},
	}
	for _, req := range cases {
		if code, _, body := postCampaign(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("request %+v: got %d, want 400 (%s)", req, code, body)
		}
	}
	if code, body := get(t, ts.URL+"/api/v1/campaigns/999"); code != http.StatusNotFound {
		t.Errorf("unknown id: %d %s", code, body)
	}
}

// TestDaemonCancelAndDrain: DELETE stops a running campaign at a cell
// boundary with its journal on disk; Drain flips readiness and rejects
// new submissions.
func TestDaemonCancelAndDrain(t *testing.T) {
	srv, ts, dir := newTestServer(t, "GTX 480")
	req := CampaignRequest{Seed: 7, Workers: 1, Boards: []string{"GTX 480"}, Repetitions: 5}
	code, st, body := postCampaign(t, ts.URL, req)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	final := waitState(t, ts.URL, st.ID, StateCancelled, StateCompleted)
	if final.State == StateCancelled {
		if _, err := os.Stat(filepath.Join(dir, "campaign-"+st.ID+".journal")); err != nil {
			t.Fatalf("cancelled campaign left no resumable journal: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", code)
	}
	if code, _, _ := postCampaign(t, ts.URL, CampaignRequest{}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d", code)
	}
}
