package daemon

import (
	"net/http"
	"strings"
	"testing"

	"gpuperf/internal/obs"
)

// TestDaemonFleetCampaign covers the fleet campaign path end-to-end: a
// kind="fleet" submission runs a sharded population sweep, the terminal
// status JSON carries per-shard progress, the rendered report is the
// fleet population summary, and /metrics exposes every gpuperf_fleet_*
// family with values consistent with the campaign that just ran.
func TestDaemonFleetCampaign(t *testing.T) {
	_, ts, _ := newTestServer(t, "GTX 680")

	req := CampaignRequest{
		Kind:          KindFleet,
		Seed:          42,
		Workers:       4,
		Boards:        []string{"GTX 680"},
		Benchmarks:    []string{"backprop"},
		FleetSize:     6,
		Shards:        2,
		JitterProfile: "tight",
	}
	code, st, body := postCampaign(t, ts.URL, req)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	final := waitState(t, ts.URL, st.ID, StateCompleted)

	if final.Progress.Planned == 0 || final.Progress.Done != final.Progress.Planned {
		t.Fatalf("final progress: %+v", final.Progress)
	}
	if len(final.Shards) != 2 {
		t.Fatalf("terminal status shards = %+v, want 2 entries", final.Shards)
	}
	var devDone, cells int64
	for _, sp := range final.Shards {
		if sp.DevicesDone != sp.DevicesPlanned || sp.CellsDone != sp.CellsPlanned {
			t.Fatalf("shard %d did not finish: %+v", sp.Shard, sp)
		}
		devDone += sp.DevicesDone
		cells += sp.CellsDone
	}
	if devDone != int64(req.FleetSize) {
		t.Fatalf("devices done = %d, want %d", devDone, req.FleetSize)
	}

	code, rep := get(t, ts.URL+"/api/v1/campaigns/"+st.ID+"/report")
	if code != 200 || !strings.Contains(rep, "Fleet campaign: 6 devices") {
		t.Fatalf("report: %d\n%s", code, rep)
	}

	// Exposition: every fleet family present, values consistent with the
	// finished campaign, and the text still parses as valid Prometheus.
	_, exp := get(t, ts.URL+"/metrics")
	for _, fam := range []string{
		"gpuperf_fleet_devices_planned 6",
		"gpuperf_fleet_devices_done 6",
		"gpuperf_fleet_shard_lag_cells",
		"gpuperf_fleet_rows_folded_total",
		`gpuperf_fleet_shard_cells_total{shard="0"}`,
		`gpuperf_fleet_shard_cells_total{shard="1"}`,
	} {
		if !strings.Contains(exp, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(exp)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestDaemonRejectsBadFleetRequests pins the fleet slice of the 400-path
// contract: fleet kinds need a population, fleet knobs are rejected on
// classic kinds, and jitter strings are validated at submission.
func TestDaemonRejectsBadFleetRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, "GTX 680")
	cases := []CampaignRequest{
		{Kind: KindFleet},                                           // no fleet_size
		{Kind: KindFleet, FleetSize: -3},                            // negative population
		{Kind: KindFleet, FleetSize: 4, Shards: -1},                 // negative shards
		{Kind: KindFleet, FleetSize: 4, JitterProfile: "bogus:0.1"}, // unknown jitter key
		{Kind: KindFleet, FleetSize: 4, JitterProfile: "meter:1.5"}, // out of [0, 1]
		{Kind: KindFleet, FleetSize: 4, Repetitions: 3},             // fleets don't repeat
		{Kind: KindSweep, FleetSize: 4},                             // fleet knob on sweep
		{Kind: KindModel, Shards: 2},                                // fleet knob on model
		{JitterProfile: "tight"},                                    // fleet knob on default kind
	}
	for _, req := range cases {
		if code, _, body := postCampaign(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("request %+v: got %d, want 400 (%s)", req, code, body)
		}
	}
}
