package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gpuperf/internal/power"
)

// expositionContentType is the Prometheus text format version the
// exposition writer emits.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler builds the daemon's HTTP API. Every route reads server state;
// none of them writes to the metrics registry — handles are registered
// once in New/collector.New, and /metrics renders a consistent snapshot,
// so scrapes are safe concurrently with running campaigns.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/triage", s.handleTriage)
	mux.HandleFunc("GET /api/v1/power", s.handlePower)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Snapshot first: the render then happens lock-free on a consistent
	// copy, byte-identical to the artifact writer for the same state.
	snap := s.rec.Metrics().Snapshot()
	w.Header().Set("Content-Type", expositionContentType)
	if err := snap.WriteText(w); err != nil {
		// Headers are gone; all we can do is drop the connection early.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone mid-body; nothing to recover
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	c, err := s.Submit(req)
	if err != nil {
		var re *RequestError
		switch {
		case errors.As(err, &re):
			writeError(w, http.StatusBadRequest, re.Error())
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, c.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Campaigns())
}

// campaignFor resolves the {id} path value, writing the 404 itself.
func (s *Server) campaignFor(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign "+r.PathValue("id"))
	}
	return c, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaignFor(w, r); ok {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	c.Cancel()
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	text, ok := c.Report()
	if !ok {
		writeError(w, http.StatusConflict, "campaign "+c.id+" is "+c.Status().State+", report available when completed")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

func (s *Server) handleTriage(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	trep, ok := c.Triage()
	if !ok {
		writeError(w, http.StatusConflict, "campaign "+c.id+" has no triage report yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trep.WriteJSON(w); err != nil {
		return // client gone mid-body
	}
}

// devicePower is one device's entry in the GET /api/v1/power response.
type devicePower struct {
	Device string                    `json:"device"`
	Idle   map[power.Scope]float64   `json:"idle_watts"`
	Recent map[power.Scope][]float64 `json:"recent_watts"`
}

func (s *Server) handlePower(w http.ResponseWriter, _ *http.Request) {
	out := make([]devicePower, 0, len(s.cfg.Boards))
	for _, name := range s.col.Devices() {
		idle := s.col.Idle(name)
		dp := devicePower{
			Device: name,
			Idle:   make(map[power.Scope]float64, 3),
			Recent: make(map[power.Scope][]float64, 3),
		}
		for _, sc := range power.Scopes() {
			dp.Idle[sc] = idle.Scope(sc)
			dp.Recent[sc] = s.col.Recent(name, sc)
		}
		out = append(out, dp)
	}
	writeJSON(w, http.StatusOK, out)
}
