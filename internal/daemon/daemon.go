// Package daemon is the serving layer: a long-running gpuperfd process
// owns a fleet of simulated devices, a shared observability recorder and
// a launch cache, and exposes the campaign engine over HTTP —
//
//	GET    /metrics                     live Prometheus text exposition
//	GET    /healthz                     liveness
//	GET    /readyz                      readiness (503 while draining)
//	POST   /api/v1/campaigns            submit a sweep/model campaign
//	GET    /api/v1/campaigns            list campaign statuses
//	GET    /api/v1/campaigns/{id}       one campaign's status JSON
//	DELETE /api/v1/campaigns/{id}       cancel (journal stays resumable)
//	GET    /api/v1/campaigns/{id}/report rendered report (completed only)
//	GET    /api/v1/campaigns/{id}/triage machine-readable triage report
//	GET    /api/v1/power                per-device recent power, JSON
//
// Scrape-safety contract: /metrics renders a Registry.Snapshot — a
// consistent deep copy taken under the registry lock — so scrapes run
// concurrently with campaigns registering series, and the live text is
// byte-identical to what the artifact writer (obs.Recorder.WriteMetrics)
// would emit for the same state. HTTP handlers never register metric
// handles; every family is created in New (collector included), which is
// the discipline gpulint's daemoncheck analyzer enforces.
//
// Campaigns are ordinary session.Sessions: each gets its own checkpoint
// journal under DataDir and a context cancelled by DELETE or by Drain,
// so a SIGTERM shutdown stops every in-flight campaign at a cell
// boundary with its journal resumable — resubmitting the same campaign
// replays the completed cells. Artifacts are byte-identical to the same
// campaign run through cmd/characterize at the same seed: the daemon
// adds live telemetry (the collector fan-out), never noise.
package daemon

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/daemon/collector"
	"gpuperf/internal/obs"
)

// Config configures one daemon instance.
type Config struct {
	// Boards is the served fleet (empty: the paper's four boards).
	// Campaign requests may restrict to a subset; boards outside the
	// fleet are rejected at submission.
	Boards []string
	// DataDir receives per-campaign checkpoint journals and triage
	// reports. Required.
	DataDir string
	// Retention bounds the collector's per-(device, scope) sample
	// history (≤ 0: collector.DefaultRetention).
	Retention int
	// SampleInterval is the collector's idle-heartbeat period (≤ 0: 1s).
	SampleInterval time.Duration
}

// fleetMetrics is the gpuperf_fleet_* exposition: live progress of the
// daemon's fleet campaigns, fed by each fleet runner's poller. Gauges
// reflect the most recently updated fleet campaign; the counters
// accumulate across campaigns.
type fleetMetrics struct {
	devicesPlanned *obs.Gauge
	devicesDone    *obs.Gauge
	shardLag       *obs.Gauge
	rowsFolded     *obs.Counter
	shardCells     *obs.CounterVec
}

// Server is one running daemon: the shared recorder, the telemetry
// collector and the campaign table. Build with New, shut down with
// Drain. Safe for concurrent use by the HTTP stack.
type Server struct {
	cfg    Config
	rec    *obs.Recorder
	col    *collector.Collector
	fleetM *fleetMetrics

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // campaign IDs in submission order
	seq       int
	draining  bool

	wg      sync.WaitGroup // in-flight campaign runners
	colOnce sync.Once      // collector heartbeat stops exactly once
}

// New validates the fleet, boots the collector (registering every live
// metric family), and starts the idle heartbeat. The server is ready to
// serve as soon as New returns.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("daemon: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	if len(cfg.Boards) == 0 {
		for _, spec := range arch.AllBoards() {
			cfg.Boards = append(cfg.Boards, spec.Name)
		}
	}
	rec := obs.New()
	col, err := collector.New(rec.Metrics(), cfg.Boards, cfg.Retention)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	m := rec.Metrics()
	s := &Server{
		cfg: cfg,
		rec: rec,
		col: col,
		fleetM: &fleetMetrics{
			devicesPlanned: m.Gauge("gpuperf_fleet_devices_planned",
				"devices the current fleet campaign set out to sweep"),
			devicesDone: m.Gauge("gpuperf_fleet_devices_done",
				"devices the current fleet campaign has completed"),
			shardLag: m.Gauge("gpuperf_fleet_shard_lag_cells",
				"cells-done gap between the fastest and slowest fleet shard"),
			rowsFolded: m.Counter("gpuperf_fleet_rows_folded_total",
				"rows folded into fleet aggregates across all fleet campaigns"),
			shardCells: m.CounterVec("gpuperf_fleet_shard_cells_total",
				"fleet sweep cells resolved, by shard", "shard"),
		},
		campaigns: make(map[string]*Campaign),
	}
	interval := cfg.SampleInterval
	if interval <= 0 {
		interval = time.Second
	}
	col.Start(interval)
	return s, nil
}

// Recorder returns the daemon's shared observability recorder — every
// campaign's counters and tracks land here.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Collector returns the live power-telemetry collector.
func (s *Server) Collector() *collector.Collector { return s.col }

// Ready reports whether the server accepts new campaigns (false once
// draining begins).
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// Drain performs the graceful shutdown: stop accepting campaigns, cancel
// every in-flight one (each stops at a cell boundary, its checkpoint
// journal resumable), wait for the runners — bounded by ctx — then stop
// the collector heartbeat. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, c := range s.campaigns {
		c.cancel()
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func(done chan<- struct{}) {
		s.wg.Wait()
		close(done)
	}(finished)
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = fmt.Errorf("daemon: drain: %w", context.Cause(ctx))
	}
	s.colOnce.Do(s.col.Stop)
	return err
}
