package daemon

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/core"
	"gpuperf/internal/fault"
	"gpuperf/internal/fleet"
	"gpuperf/internal/report"
	"gpuperf/internal/session"
	"gpuperf/internal/validity"
	"gpuperf/internal/workloads"
)

// Campaign kinds.
const (
	KindSweep = "sweep" // Table IV characterization sweep (repetition cohort)
	KindModel = "model" // per-board modeling collection + unified models
	KindFleet = "fleet" // sharded fleet campaign over jittered devices
)

// Campaign states. A campaign moves pending → running → one of the
// terminal states; DELETE moves a running campaign to cancelled at its
// next cell boundary.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// CampaignRequest is the POST /api/v1/campaigns body. The zero value of
// every optional field means the engine default.
type CampaignRequest struct {
	// Kind selects the campaign engine: "sweep" (default) or "model".
	Kind string `json:"kind,omitempty"`
	// Seed drives every noise and fault stream; campaigns are a pure
	// function of it (0 is a valid seed and is used as-is).
	Seed int64 `json:"seed"`
	// Boards restricts the campaign (empty: the daemon's full fleet).
	// Every named board must be in the served fleet.
	Boards []string `json:"boards,omitempty"`
	// Benchmarks restricts the workload set by name (empty: the paper's
	// Table IV set for sweeps, the modeling set for model campaigns).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Workers bounds the sweep pool; 1 is the bit-exact sequential
	// reference (0: GOMAXPROCS). Output is identical at any width.
	Workers int `json:"workers,omitempty"`
	// Faults is a fault-injection profile spec (empty: fault-free).
	Faults string `json:"faults,omitempty"`
	// MaxRetries / LaunchTimeoutMS tune the retry/watchdog policy
	// (0: engine defaults).
	MaxRetries      int   `json:"max_retries,omitempty"`
	LaunchTimeoutMS int64 `json:"launch_timeout_ms,omitempty"`
	// Repetitions / MinValid configure the repetition cohort and its
	// publishability floor (0: single run / all-valid).
	Repetitions int `json:"repetitions,omitempty"`
	MinValid    int `json:"min_valid,omitempty"`
	// NoCache is rejected: the daemon's campaigns share one process-wide
	// launch cache; per-campaign cache opt-out would toggle a global.
	NoCache bool `json:"nocache,omitempty"`
	// FleetSize / Shards / JitterProfile configure "fleet" campaigns:
	// FleetSize jittered devices generated from the board set, partitioned
	// across Shards pipelines (0: 1). The report is byte-identical at any
	// shard count. Rejected for other kinds.
	FleetSize     int    `json:"fleet_size,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	JitterProfile string `json:"jitter_profile,omitempty"`
}

// TriageStatus is the validity verdict summary embedded in a campaign's
// status JSON once triage has run.
type TriageStatus struct {
	Publishable bool           `json:"publishable"`
	Summary     string         `json:"summary"`
	Counts      map[string]int `json:"counts"`
}

// CampaignStatus is the status JSON for one campaign.
type CampaignStatus struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"`
	State      string           `json:"state"`
	Request    CampaignRequest  `json:"request"`
	Progress   session.Progress `json:"progress"`
	Checkpoint string           `json:"checkpoint"`
	Error      string           `json:"error,omitempty"`
	Triage     *TriageStatus    `json:"triage,omitempty"`
	// Shards is the per-shard fleet progress, fleet campaigns only.
	Shards []fleet.ShardProgress `json:"shards,omitempty"`
}

// Campaign is one submitted job: a session.Session run by a dedicated
// goroutine under a cancellable context.
type Campaign struct {
	id         string
	req        CampaignRequest
	checkpoint string
	cancel     context.CancelFunc
	done       chan struct{}

	mu          sync.Mutex
	state       string
	errMsg      string
	sess        *session.Session      // set while running (progress introspection)
	final       session.Progress      // last progress snapshot after the session closed
	finalShards []fleet.ShardProgress // last per-shard snapshot, fleet campaigns only
	report      string                // rendered report, terminal states only
	triage      *validity.Report
}

// Status snapshots the campaign for its status JSON.
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID:         c.id,
		Kind:       c.req.Kind,
		State:      c.state,
		Request:    c.req,
		Checkpoint: c.checkpoint,
		Error:      c.errMsg,
	}
	if c.sess != nil {
		st.Progress = c.sess.Progress()
		if sp, ok := c.sess.FleetProgress(); ok {
			st.Shards = sp
		}
	} else {
		st.Progress = c.final
		st.Shards = c.finalShards
	}
	if c.triage != nil {
		counts := make(map[string]int, len(c.triage.Counts))
		for class, n := range c.triage.Counts {
			counts[string(class)] = n
		}
		st.Triage = &TriageStatus{
			Publishable: c.triage.Publishable(),
			Summary:     c.triage.Summary(),
			Counts:      counts,
		}
	}
	return st
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// RequestError is a campaign submission the server rejected; the HTTP
// layer maps it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func reqErrf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// resolveBenches validates the request's benchmark names (empty: the
// kind's default set).
func resolveBenches(kind string, names []string) ([]*workloads.Benchmark, error) {
	if len(names) == 0 {
		if kind == KindModel {
			return workloads.ModelingSet(), nil
		}
		return workloads.Table4(), nil
	}
	out := make([]*workloads.Benchmark, 0, len(names))
	for _, n := range names {
		b := workloads.ByName(n)
		if b == nil {
			return nil, reqErrf("unknown benchmark %q", n)
		}
		out = append(out, b)
	}
	return out, nil
}

// Submit validates a campaign request, assigns it an ID and starts its
// runner. Rejections are *RequestError (bad request) or ErrDraining.
func (s *Server) Submit(req CampaignRequest) (*Campaign, error) {
	if req.Kind == "" {
		req.Kind = KindSweep
	}
	if req.Kind != KindSweep && req.Kind != KindModel && req.Kind != KindFleet {
		return nil, reqErrf("unknown campaign kind %q", req.Kind)
	}
	if req.NoCache {
		return nil, reqErrf("nocache campaigns are not served: the daemon shares one launch cache across campaigns")
	}
	if req.Kind == KindFleet {
		if req.FleetSize < 1 {
			return nil, reqErrf("fleet campaigns require fleet_size ≥ 1")
		}
		if req.Shards < 0 {
			return nil, reqErrf("shards must be ≥ 0 (0: one shard)")
		}
		if _, err := fleet.ParseJitterProfile(req.JitterProfile); err != nil {
			return nil, reqErrf("jitter_profile: %v", err)
		}
		if req.Repetitions > 1 {
			return nil, reqErrf("fleet campaigns do not take repetitions")
		}
	} else if req.FleetSize != 0 || req.Shards != 0 || req.JitterProfile != "" {
		return nil, reqErrf(`fleet_size/shards/jitter_profile require kind "fleet"`)
	}
	served := make(map[string]bool, len(s.cfg.Boards))
	for _, b := range s.cfg.Boards {
		served[b] = true
	}
	for _, b := range req.Boards {
		if arch.BoardByName(b) == nil {
			return nil, reqErrf("unknown board %q", b)
		}
		if !served[b] {
			return nil, reqErrf("board %q is not in the served fleet", b)
		}
	}
	benches, err := resolveBenches(req.Kind, req.Benchmarks)
	if err != nil {
		return nil, err
	}
	var profile *fault.Profile
	if req.Faults != "" {
		profile, err = fault.ParseProfile(req.Faults)
		if err != nil {
			return nil, reqErrf("faults: %v", err)
		}
	}
	if req.Repetitions < 0 || req.MinValid < 0 {
		return nil, reqErrf("repetitions and min_valid must be ≥ 0")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := strconv.Itoa(s.seq)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Campaign{
		id:         id,
		req:        req,
		checkpoint: filepath.Join(s.cfg.DataDir, "campaign-"+id+".journal"),
		cancel:     cancel,
		done:       make(chan struct{}),
		state:      StatePending,
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(ctx, c, profile, benches)
	return c, nil
}

// ErrDraining rejects submissions during graceful shutdown (HTTP 503).
var ErrDraining = errors.New("daemon: draining, not accepting campaigns")

// Campaign looks a campaign up by ID.
func (s *Server) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Campaigns returns every campaign's status in submission order.
func (s *Server) Campaigns() []CampaignStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	byID := make(map[string]*Campaign, len(ids))
	for id, c := range s.campaigns {
		byID[id] = c
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id].Status())
	}
	return out
}

// Cancel requests cancellation; the campaign stops at its next cell
// boundary with its journal resumable. No-op on terminal campaigns.
func (c *Campaign) Cancel() { c.cancel() }

// sessionConfig translates a validated request into the session
// configuration the runner opens. Cache is always on (see
// CampaignRequest.NoCache); the daemon's recorder and collector are
// shared across campaigns, with per-campaign track prefixes keeping
// their virtual-time tracks apart.
func (s *Server) sessionConfig(c *Campaign, profile *fault.Profile) session.Config {
	cfg := session.DefaultConfig()
	cfg.Seed = c.req.Seed
	if c.req.Workers > 0 {
		cfg.Workers = c.req.Workers
	}
	cfg.Boards = c.req.Boards
	cfg.Faults = profile
	if c.req.MaxRetries > 0 {
		cfg.MaxRetries = c.req.MaxRetries
	}
	if c.req.LaunchTimeoutMS > 0 {
		cfg.LaunchTimeout = time.Duration(c.req.LaunchTimeoutMS) * time.Millisecond
	}
	if c.req.Repetitions > 0 {
		cfg.Repetitions = c.req.Repetitions
	}
	cfg.MinValid = c.req.MinValid
	cfg.Checkpoint = c.checkpoint
	cfg.Cache = true
	cfg.Obs = s.rec
	cfg.PowerFanout = s.col
	cfg.TrackPrefix = "campaign/" + c.id
	if c.req.Kind == KindFleet {
		cfg.FleetSize = c.req.FleetSize
		cfg.FleetShards = c.req.Shards
		cfg.FleetJitter = c.req.JitterProfile
	}
	return cfg
}

// run executes one campaign to a terminal state. ctx is cancelled by
// DELETE or by Drain; either way the session stops at a cell boundary
// and the checkpoint journal stays resumable.
func (s *Server) run(ctx context.Context, c *Campaign, profile *fault.Profile, benches []*workloads.Benchmark) {
	defer s.wg.Done()
	defer close(c.done)
	fail := func(state string, err error) {
		c.mu.Lock()
		c.state = state
		if err != nil {
			c.errMsg = err.Error()
		}
		if c.sess != nil {
			c.final = c.sess.Progress()
			if sp, ok := c.sess.FleetProgress(); ok {
				c.finalShards = sp
			}
		}
		c.sess = nil
		c.mu.Unlock()
	}

	sess, err := session.Open(s.sessionConfig(c, profile))
	if err != nil {
		fail(StateFailed, err)
		return
	}
	defer sess.Close()
	c.mu.Lock()
	c.state = StateRunning
	c.sess = sess
	c.mu.Unlock()

	var rendered string
	var trep *validity.Report
	switch c.req.Kind {
	case KindModel:
		rendered, err = runModel(ctx, sess, benches)
	case KindFleet:
		stopPoll := s.pollFleet(sess)
		rendered, err = runFleet(ctx, sess, benches)
		stopPoll()
	default:
		rendered, trep, err = runSweep(ctx, sess, benches)
	}
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			fail(StateCancelled, err)
		} else {
			fail(StateFailed, err)
		}
		return
	}
	if trep != nil {
		if werr := trep.WriteFile(filepath.Join(s.cfg.DataDir, "campaign-"+c.id+".triage.json")); werr != nil {
			fail(StateFailed, werr)
			return
		}
	}
	c.mu.Lock()
	c.state = StateCompleted
	c.report = rendered
	c.triage = trep
	c.final = sess.Progress() // stays visible after the session closes
	if sp, ok := sess.FleetProgress(); ok {
		c.finalShards = sp
	}
	c.sess = nil
	c.mu.Unlock()
}

// runFleet is the fleet campaign path: the session's sharded fleet sweep
// rendered as the population summary — byte-identical to the same
// campaign run through cmd/characterize -fleet-size at the same seed.
func runFleet(ctx context.Context, sess *session.Session, benches []*workloads.Benchmark) (string, error) {
	rep, err := sess.Fleet(ctx, benches)
	if err != nil {
		return "", err
	}
	return report.FleetSummary(rep), nil
}

// pollFleet feeds the gpuperf_fleet_* families from the session's shard
// tracker while a fleet campaign runs. The returned stop flushes a final
// snapshot and waits for the goroutine, so terminal metric values are
// consistent with the campaign's final status JSON.
func (s *Server) pollFleet(sess *session.Session) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		prevCells := make(map[int]int64)
		var prevRows int64
		update := func() {
			sp, ok := sess.FleetProgress()
			if !ok {
				return
			}
			var planned, devDone, rows int64
			var minC, maxC int64
			for i, p := range sp {
				planned += p.DevicesPlanned
				devDone += p.DevicesDone
				rows += p.RowsFolded
				if i == 0 || p.CellsDone < minC {
					minC = p.CellsDone
				}
				if i == 0 || p.CellsDone > maxC {
					maxC = p.CellsDone
				}
				if d := p.CellsDone - prevCells[p.Shard]; d > 0 {
					s.fleetM.shardCells.With(strconv.Itoa(p.Shard)).Add(d)
					prevCells[p.Shard] = p.CellsDone
				}
			}
			s.fleetM.devicesPlanned.Set(planned)
			s.fleetM.devicesDone.Set(devDone)
			s.fleetM.shardLag.Set(maxC - minC)
			if d := rows - prevRows; d > 0 {
				s.fleetM.rowsFolded.Add(d)
				prevRows = rows
			}
		}
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				update()
				return
			case <-t.C:
				update()
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
	}
}

// runSweep is the Table IV path, mirroring cmd/characterize -table 4:
// a repetition cohort, triage over the cohort, and the table rendered
// from repetition 0 — so the journal and report are byte-identical to
// the CLI run at the same seed and configuration. Triage always runs
// (the status JSON carries its verdicts), but it only annotates the
// rendered table when the CLI would have engaged it too.
func runSweep(ctx context.Context, sess *session.Session, benches []*workloads.Benchmark) (string, *validity.Report, error) {
	repsRes, err := sess.Repeat(ctx, benches)
	if err != nil {
		return "", nil, err
	}
	tr := sess.NewTriage()
	if err := characterize.ObserveTriageReps(tr, "table4", repsRes); err != nil {
		return "", nil, err
	}
	cfg := sess.Config()
	var renderTr *validity.Triage
	if cfg.Repetitions > 1 || cfg.MinValid > 0 {
		renderTr = tr
	}
	tbl := report.Table4(sess.Boards(), repsRes[0], renderTr)
	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\n")
	for _, d := range characterize.Degradations(repsRes[0]) {
		b.WriteString("degraded: " + d.Line + "\n")
	}
	return b.String(), tr.Finalize(), nil
}

// runModel is the modeling path: one dataset collection and one power +
// one time model per board, summarized as text.
func runModel(ctx context.Context, sess *session.Session, benches []*workloads.Benchmark) (string, error) {
	var b strings.Builder
	for _, spec := range sess.Boards() {
		ds, err := sess.Collect(ctx, spec.Name, benches)
		if err != nil {
			return "", err
		}
		for _, kind := range []core.Kind{core.Power, core.Time} {
			m, err := sess.Model(ctx, ds, kind)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s %s: adj-R² %.4f, %d variables: %s\n",
				spec.Name, kind, m.AdjR2(), len(m.Variables()),
				strings.Join(m.Variables(), ", "))
		}
	}
	return b.String(), nil
}

// Report returns the campaign's rendered report once completed.
func (c *Campaign) Report() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateCompleted {
		return "", false
	}
	return c.report, true
}

// Triage returns the campaign's finalized triage report, when present.
func (c *Campaign) Triage() (*validity.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.triage, c.triage != nil
}
