package meter

import (
	"math"
	"math/rand"
	"sort"
)

// Periodic is a power waveform made of one period's trace tiled a fixed
// number of times — the natural shape of a metered run, which repeats one
// kernel-sequence iteration until the instrument sees enough samples.
// Representing the run this way keeps metering O(period segments +
// samples) where the flat representation costs O(repeats × period
// segments) to even build.
//
// The Period slice is treated as immutable; callers that need to append
// or mutate segments must work on a Flatten()ed copy.
type Periodic struct {
	Period  Trace
	Repeats int
}

// Tile wraps one period repeated n times.
func Tile(period Trace, n int) Periodic { return Periodic{Period: period, Repeats: n} }

// TotalDuration returns the waveform length in seconds.
func (p Periodic) TotalDuration() float64 {
	return p.Period.TotalDuration() * float64(p.Repeats)
}

// TrueEnergy integrates the waveform exactly (diagnostics / oracle).
func (p Periodic) TrueEnergy() float64 {
	return p.Period.TrueEnergy() * float64(p.Repeats)
}

// TrueAvgWatts returns the exact average power of the waveform.
func (p Periodic) TrueAvgWatts() float64 { return p.Period.TrueAvgWatts() }

// Flatten materializes the explicit segment list, merging equal-power
// neighbours exactly as repeated Append calls would have.
func (p Periodic) Flatten() Trace {
	if p.Repeats <= 0 || len(p.Period) == 0 {
		return nil
	}
	out := make(Trace, 0, len(p.Period)*p.Repeats)
	for r := 0; r < p.Repeats; r++ {
		for _, s := range p.Period {
			out = out.Append(s.Duration, s.Watts)
		}
	}
	return out
}

// EnergyUpTo integrates the waveform exactly over [0, t] seconds,
// clamping t to the waveform's duration. Cost: O(log period segments).
func (p Periodic) EnergyUpTo(t float64) float64 {
	d := p.Period.TotalDuration()
	if d <= 0 || p.Repeats <= 0 || t <= 0 {
		return 0
	}
	ends, energy := p.prefix()
	return p.energyAt(t, d, ends, energy)
}

// prefix returns, per period segment, the cumulative end time and
// cumulative energy of the period.
func (p Periodic) prefix() (ends, energy []float64) {
	ends = make([]float64, len(p.Period))
	energy = make([]float64, len(p.Period))
	var t, e float64
	for i, s := range p.Period {
		t += s.Duration
		e += s.Duration * s.Watts
		ends[i] = t
		energy[i] = e
	}
	return ends, energy
}

// prefixInto is prefix computed into the meter's reusable scratch
// buffers — same values, no per-measurement allocation. The slices are
// only valid until the next MeasurePeriodic call on this meter.
func (m *Meter) prefixInto(p Periodic) (ends, energy []float64) {
	if cap(m.scratchEnds) < len(p.Period) {
		m.scratchEnds = make([]float64, len(p.Period))
		m.scratchEnergy = make([]float64, len(p.Period))
	}
	ends = m.scratchEnds[:len(p.Period)]
	energy = m.scratchEnergy[:len(p.Period)]
	var t, e float64
	for i, s := range p.Period {
		t += s.Duration
		e += s.Duration * s.Watts
		ends[i] = t
		energy[i] = e
	}
	return ends, energy
}

// energyAt evaluates the exact integral over [0, t] given the period
// prefix sums (d is the period duration, ends/energy from prefix).
func (p Periodic) energyAt(t, d float64, ends, energy []float64) float64 {
	if t <= 0 {
		return 0
	}
	total := d * float64(p.Repeats)
	if t > total {
		t = total
	}
	k := math.Floor(t / d)
	if k > float64(p.Repeats) {
		k = float64(p.Repeats)
	}
	rem := t - k*d
	if rem < 0 {
		rem = 0
	}
	if rem > d {
		rem = d
	}
	periodEnergy := energy[len(energy)-1]
	e := k * periodEnergy
	if rem == 0 {
		return e
	}
	i := sort.SearchFloat64s(ends, rem)
	if i >= len(ends) {
		i = len(ends) - 1
	}
	var start, before float64
	if i > 0 {
		start = ends[i-1]
		before = energy[i-1]
	}
	return e + before + (rem-start)*p.Period[i].Watts
}

// MeasurePeriodic samples a tiled waveform every SamplePeriod, exactly as
// Measure samples a flat trace, but in O(period segments + samples): each
// 50 ms window's energy is the difference of two exact prefix-integral
// evaluations instead of a segment walk across the whole run. The rng
// drives the identical per-sample noise model; pass nil for an ideal
// instrument.
func (m *Meter) MeasurePeriodic(p Periodic, rng *rand.Rand) (*Measurement, error) {
	d := p.Period.TotalDuration()
	if d <= 0 || p.Repeats <= 0 {
		return nil, ErrTooShort
	}
	total := d * float64(p.Repeats)
	if total < float64(MinSamples)*m.SamplePeriod {
		return nil, ErrTooShort
	}
	n := int(total / m.SamplePeriod) // complete windows only, like the instrument
	out := newMeasurement(n)

	ends, energy := m.prefixInto(p)
	prev := 0.0
	for i := 0; i < n; i++ {
		cur := p.energyAt(float64(i+1)*m.SamplePeriod, d, ends, energy)
		w := (cur - prev) / m.SamplePeriod
		prev = cur
		if rng != nil && m.NoiseStdDev > 0 {
			w += m.NoiseStdDev * rng.NormFloat64()
		}
		if m.Gain != 0 {
			w *= m.Gain
		}
		if m.RangeWatts > 0 && w > m.RangeWatts {
			w = m.RangeWatts
			out.Overloaded = true
		}
		out.Samples = append(out.Samples, w)
	}
	return m.finalize(out)
}
