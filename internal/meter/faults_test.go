package meter

import (
	"math"
	"math/rand"
	"testing"

	"gpuperf/internal/fault"
)

func testCampaign(t *testing.T, spec string, seed int64) *fault.Campaign {
	t.Helper()
	p, err := fault.ParseProfile(spec)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", spec, err)
	}
	return &fault.Campaign{Profile: p, Seed: seed}
}

func flatTrace(watts, seconds float64) Trace {
	return Trace{{Duration: seconds, Watts: watts}}
}

// measureWith runs one measurement of a flat 100 W, 2 s trace under the
// given injector, with deterministic sampling noise.
func measureWith(t *testing.T, in *fault.Injector) (*Measurement, error) {
	t.Helper()
	m := New()
	m.Faults = in
	return m.Measure(flatTrace(100, 2.0), rand.New(rand.NewSource(1)))
}

func TestFaultFreeMeasurementUntouched(t *testing.T) {
	clean, err := measureWith(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A zero-probability campaign must leave the measurement structurally
	// identical: same samples, nil Valid, zero counters.
	zero := testCampaign(t, "meter.drop:0,meter.spike:0,meter.stuck:0", 9)
	got, err := measureWith(t, zero.Injector("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid != nil || got.Dropped+got.Spiked+got.Stuck+got.Interpolated != 0 {
		t.Fatalf("zero-probability campaign degraded the measurement: %+v", got)
	}
	if len(got.Samples) != len(clean.Samples) {
		t.Fatalf("sample count changed: %d vs %d", len(got.Samples), len(clean.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != clean.Samples[i] {
			t.Fatalf("sample %d changed: %v vs %v", i, got.Samples[i], clean.Samples[i])
		}
	}
	if got.Confidence() != 1 || got.Degraded() {
		t.Errorf("clean measurement: Confidence=%v Degraded=%v", got.Confidence(), got.Degraded())
	}
}

func TestDropoutInterpolated(t *testing.T) {
	c := testCampaign(t, "meter.drop:0.2", 3)
	got, err := measureWith(t, c.Injector("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dropped == 0 {
		t.Fatal("p=0.2 over 40 samples dropped nothing (seed-dependent; pick another seed)")
	}
	if got.Interpolated != got.Dropped {
		t.Errorf("Interpolated=%d, Dropped=%d", got.Interpolated, got.Dropped)
	}
	if got.Valid == nil {
		t.Fatal("degraded measurement has nil Valid mask")
	}
	// Interpolation must keep every reconstructed sample near the true
	// 100 W level — never the raw 0 W a dropout leaves behind.
	for i, w := range got.Samples {
		if w < 50 || w > 150 {
			t.Errorf("sample %d = %v W after interpolation", i, w)
		}
	}
	if !got.Degraded() {
		t.Error("dropouts must mark the measurement degraded")
	}
	wantConf := float64(len(got.Samples)-got.Interpolated) / float64(len(got.Samples))
	if math.Abs(got.Confidence()-wantConf) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", got.Confidence(), wantConf)
	}
	// The reconstructed integral stays close to the true 200 J.
	if math.Abs(got.EnergyJoules-200) > 10 {
		t.Errorf("energy after interpolation = %v J, want ≈200", got.EnergyJoules)
	}
}

func TestSpikeDetectedAndRemoved(t *testing.T) {
	c := testCampaign(t, "meter.spike:0.1", 5)
	got, err := measureWith(t, c.Injector("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spiked == 0 {
		t.Fatal("p=0.1 over 40 samples spiked nothing (seed-dependent; pick another seed)")
	}
	for i, w := range got.Samples {
		if w > SpikeThresholdWatts {
			t.Errorf("sample %d = %v W: spike survived detection", i, w)
		}
	}
	if math.Abs(got.AvgWatts-100) > 5 {
		t.Errorf("average after spike removal = %v W, want ≈100", got.AvgWatts)
	}
}

func TestSubThresholdSpikeEvadesDetection(t *testing.T) {
	// A spike magnitude below the plausibility threshold is the documented
	// blind spot: it biases the integral and is NOT flagged.
	c := testCampaign(t, "meter.spike:0.2:500", 5)
	got, err := measureWith(t, c.Injector("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spiked != 0 || got.Valid != nil {
		t.Errorf("sub-threshold spikes were detected: Spiked=%d Valid=%v", got.Spiked, got.Valid)
	}
	if got.AvgWatts <= 110 {
		t.Errorf("average = %v W; undetected +500 W spikes at p=0.2 should bias it well above 110", got.AvgWatts)
	}
}

func TestStuckRunDetected(t *testing.T) {
	c := testCampaign(t, "meter.stuck:1:6", 11)
	got, err := measureWith(t, c.Injector("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	// A run of 6 identical readings keeps its first (genuine) sample and
	// invalidates the rest — unless the run started so near the end that
	// it was truncated below the detection minimum of 3.
	if got.Stuck == 0 {
		t.Fatalf("stuck run not detected: %+v", got)
	}
	if got.Stuck > 5 {
		t.Errorf("Stuck = %d, want ≤ run-1 = 5", got.Stuck)
	}
	if got.Interpolated != got.Stuck {
		t.Errorf("Interpolated=%d, Stuck=%d", got.Interpolated, got.Stuck)
	}
}

func TestAllSamplesInvalidIsTransientFault(t *testing.T) {
	c := testCampaign(t, "meter.drop:1", 2)
	_, err := measureWith(t, c.Injector("m", 0))
	if err == nil {
		t.Fatal("certain dropout on every window must fail the measurement")
	}
	if !fault.IsTransient(err) {
		t.Errorf("all-invalid measurement error is not transient: %v", err)
	}
	if pt, ok := fault.PointOf(err); !ok || pt != fault.MeterDrop {
		t.Errorf("PointOf = %v, %v", pt, ok)
	}
}

func TestMeterFaultDeterminism(t *testing.T) {
	c := testCampaign(t, "meter.drop:0.1,meter.spike:0.05,meter.stuck:0.3:4", 21)
	a, err := measureWith(t, c.Injector("scope", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := measureWith(t, c.Injector("scope", 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dropped != b.Dropped || a.Spiked != b.Spiked || a.Stuck != b.Stuck ||
		a.Interpolated != b.Interpolated || a.EnergyJoules != b.EnergyJoules {
		t.Fatalf("same (seed, scope, attempt) produced different measurements:\n%+v\n%+v", a, b)
	}
	c2, err := measureWith(t, c.Injector("scope", 1))
	if err != nil {
		t.Fatal(err)
	}
	if c2.EnergyJoules == a.EnergyJoules && c2.Interpolated == a.Interpolated &&
		c2.Dropped == a.Dropped && c2.Spiked == a.Spiked {
		t.Error("different attempt produced an identical fault pattern (possible but unlikely)")
	}
}

func TestInterpolateEdges(t *testing.T) {
	s := []float64{0, 0, 10, 20, 0, 30, 0, 0}
	invalid := []bool{true, true, false, false, true, false, true, true}
	interpolate(s, invalid)
	want := []float64{10, 10, 10, 20, 25, 30, 30, 30}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("sample %d = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestPeriodicMeasurementFaults(t *testing.T) {
	// The periodic fast path funnels through the same finalize pipeline.
	c := testCampaign(t, "meter.drop:0.2", 3)
	m := New()
	m.Faults = c.Injector("m", 0)
	p := Tile(Trace{{Duration: 0.5, Watts: 100}}, 4)
	got, err := m.MeasurePeriodic(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dropped == 0 || !got.Degraded() {
		t.Fatalf("periodic path bypassed the fault pipeline: %+v", got)
	}
}
