package meter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceAppendMerges(t *testing.T) {
	var tr Trace
	tr = tr.Append(0.1, 200)
	tr = tr.Append(0.2, 200)
	tr = tr.Append(0.1, 250)
	tr = tr.Append(0, 300) // zero-duration segments are dropped
	if len(tr) != 2 {
		t.Fatalf("trace has %d segments, want 2 (merged)", len(tr))
	}
	if !close(tr[0].Duration, 0.3) || tr[0].Watts != 200 {
		t.Errorf("merged segment = %+v", tr[0])
	}
	if !close(tr.TotalDuration(), 0.4) {
		t.Errorf("TotalDuration = %g, want 0.4", tr.TotalDuration())
	}
}

func TestTrueEnergyAndAverage(t *testing.T) {
	tr := Trace{{0.5, 100}, {0.5, 300}}
	if got := tr.TrueEnergy(); !close(got, 200) {
		t.Errorf("TrueEnergy = %g, want 200", got)
	}
	if got := tr.TrueAvgWatts(); !close(got, 200) {
		t.Errorf("TrueAvgWatts = %g, want 200", got)
	}
	var empty Trace
	if got := empty.TrueAvgWatts(); got != 0 {
		t.Errorf("empty TrueAvgWatts = %g, want 0", got)
	}
}

func TestMeasureConstantTraceExact(t *testing.T) {
	m := New()
	tr := Trace{{1.0, 250}}
	meas, err := m.Measure(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Samples) != 20 {
		t.Fatalf("%d samples over 1 s, want 20", len(meas.Samples))
	}
	if !close(meas.AvgWatts, 250) {
		t.Errorf("AvgWatts = %g, want 250", meas.AvgWatts)
	}
	if !close(meas.EnergyJoules, 250) {
		t.Errorf("Energy = %g J, want 250", meas.EnergyJoules)
	}
}

func TestMeasureRejectsShortTrace(t *testing.T) {
	m := New()
	if _, err := m.Measure(Trace{{0.3, 100}}, nil); err != ErrTooShort {
		t.Errorf("Measure(0.3 s) err = %v, want ErrTooShort", err)
	}
	// Exactly 10 windows is acceptable.
	if _, err := m.Measure(Trace{{0.5, 100}}, nil); err != nil {
		t.Errorf("Measure(0.5 s) err = %v, want nil", err)
	}
}

func TestMeasureStepTrace(t *testing.T) {
	// A step from 100 W to 300 W halfway: the sampled energy must match
	// the true integral (noise-free) for window-aligned steps.
	m := New()
	tr := Trace{{0.5, 100}, {0.5, 300}}
	meas, err := m.Measure(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !close(meas.EnergyJoules, tr.TrueEnergy()) {
		t.Errorf("Energy = %g, want %g", meas.EnergyJoules, tr.TrueEnergy())
	}
	// First and last samples see the two levels.
	if !close(meas.Samples[0], 100) || !close(meas.Samples[19], 300) {
		t.Errorf("edge samples = %g, %g; want 100, 300", meas.Samples[0], meas.Samples[19])
	}
}

func TestMeasureUnalignedSegmentIntegration(t *testing.T) {
	// Segments not aligned to the 50 ms grid must be integrated within
	// windows: 75 ms at 100 W then 925 ms at 200 W → window 1 (50ms) is
	// 100 W, window 2 averages 25ms@100 + 25ms@200 = 150 W.
	m := New()
	tr := Trace{{0.075, 100}, {0.925, 200}}
	meas, err := m.Measure(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !close(meas.Samples[0], 100) {
		t.Errorf("sample 0 = %g, want 100", meas.Samples[0])
	}
	if !close(meas.Samples[1], 150) {
		t.Errorf("sample 1 = %g, want 150", meas.Samples[1])
	}
	if !close(meas.Samples[2], 200) {
		t.Errorf("sample 2 = %g, want 200", meas.Samples[2])
	}
}

func TestMeasureNoiseIsZeroMeanAndDeterministic(t *testing.T) {
	m := New()
	tr := Trace{{60.0, 200}} // 1200 samples
	a, err := m.Measure(tr, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Measure(tr, rand.New(rand.NewSource(11)))
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	// Noise averages out: mean within ±0.5 W of truth over 1200 samples.
	if math.Abs(a.AvgWatts-200) > 0.5 {
		t.Errorf("noisy AvgWatts = %g, want ≈ 200", a.AvgWatts)
	}
}

func TestMeasurePartialTailIgnored(t *testing.T) {
	// 0.52 s → 10 complete windows; the 20 ms tail is not counted,
	// exactly like an instrument reporting complete updates only.
	m := New()
	meas, err := m.Measure(Trace{{0.52, 100}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Samples) != 10 {
		t.Errorf("%d samples, want 10", len(meas.Samples))
	}
	if !close(meas.Duration, 0.5) {
		t.Errorf("Duration = %g, want 0.5", meas.Duration)
	}
}

func TestMeasureEnergyMatchesTruthProperty(t *testing.T) {
	// Property: for any piecewise trace ≥ 0.5 s, noise-free sampled
	// energy over the observed window never exceeds the true energy of
	// the whole trace and is within one window's worth of it.
	m := New()
	f := func(d1, d2, d3 uint16, w1, w2, w3 uint8) bool {
		tr := Trace{}
		tr = tr.Append(0.2+float64(d1%1000)/1000, 50+float64(w1))
		tr = tr.Append(0.2+float64(d2%1000)/1000, 50+float64(w2))
		tr = tr.Append(0.2+float64(d3%1000)/1000, 50+float64(w3))
		meas, err := m.Measure(tr, nil)
		if err != nil {
			return false
		}
		truth := tr.TrueEnergy()
		if meas.EnergyJoules > truth+1e-9 {
			return false
		}
		// Unobserved tail < one window at max power.
		maxW := 0.0
		for _, s := range tr {
			if s.Watts > maxW {
				maxW = s.Watts
			}
		}
		return truth-meas.EnergyJoules <= m.SamplePeriod*maxW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

func TestRangeClippingFlagsOverload(t *testing.T) {
	m := New()
	m.RangeWatts = 150
	meas, err := m.Measure(Trace{{0.5, 100}, {0.5, 300}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !meas.Overloaded {
		t.Error("300 W on a 150 W range did not flag overload")
	}
	for _, w := range meas.Samples {
		if w > 150 {
			t.Errorf("sample %g W above the range", w)
		}
	}
	// The clipped measurement understates energy, like a real mis-ranged
	// channel.
	truth := (Trace{{0.5, 100}, {0.5, 300}}).TrueEnergy()
	if meas.EnergyJoules >= truth {
		t.Error("clipped energy not below the truth")
	}
}

func TestAutoRangeNeverOverloads(t *testing.T) {
	m := New() // RangeWatts zero = auto
	meas, err := m.Measure(Trace{{1.0, 5000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Overloaded {
		t.Error("auto-range flagged overload")
	}
	if !close(meas.AvgWatts, 5000) {
		t.Errorf("auto-range avg %g, want 5000", meas.AvgWatts)
	}
}

func TestFanoutStreamsEverySample(t *testing.T) {
	m := New()
	m.NoiseStdDev = 0
	var got []float64
	var invalid int
	m.Fanout = func(i int, w float64, valid bool) {
		if i != len(got) {
			t.Fatalf("fanout index %d out of order (have %d)", i, len(got))
		}
		got = append(got, w)
		if !valid {
			invalid++
		}
	}
	trace := Trace{}.Append(1.0, 200)
	meas, err := m.Measure(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(meas.Samples) {
		t.Fatalf("fanout saw %d samples, measurement has %d", len(got), len(meas.Samples))
	}
	for i, w := range meas.Samples {
		if got[i] != w {
			t.Fatalf("sample %d: fanout %g != measurement %g", i, got[i], w)
		}
	}
	if invalid != 0 {
		t.Fatalf("clean measurement reported %d invalid samples", invalid)
	}
}

func TestFanoutDoesNotChangeMeasurement(t *testing.T) {
	// Attaching a fanout must leave the measurement bit-identical — the
	// live tap is invisible to the artifact path.
	trace := Trace{}.Append(0.3, 150).Append(0.4, 320).Append(0.3, 90)
	run := func(attach bool) *Measurement {
		m := New()
		if attach {
			m.Fanout = func(int, float64, bool) {}
		}
		meas, err := m.Measure(trace, nil)
		if err != nil {
			t.Fatal(err)
		}
		return meas
	}
	a, b := run(false), run(true)
	if a.AvgWatts != b.AvgWatts || a.EnergyJoules != b.EnergyJoules || len(a.Samples) != len(b.Samples) {
		t.Fatalf("fanout perturbed the measurement: %+v vs %+v", a, b)
	}
}
