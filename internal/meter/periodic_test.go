package meter

import (
	"math"
	"math/rand"
	"testing"
)

// An asymmetric period that does not divide the 50 ms sample window, so
// sample boundaries land inside segments and across period boundaries.
func testPeriod() Trace {
	var p Trace
	p = p.Append(0.013, 140)
	p = p.Append(0.007, 95)
	p = p.Append(0.021, 210.5)
	p = p.Append(0.004, 95)
	return p
}

func TestPeriodicInvariants(t *testing.T) {
	period := testPeriod()
	for _, n := range []int{1, 3, 17, 128} {
		p := Tile(period, n)
		flat := p.Flatten()
		if got, want := p.TotalDuration(), flat.TotalDuration(); math.Abs(got-want) > 1e-12*want {
			t.Errorf("n=%d: TotalDuration %g, flat %g", n, got, want)
		}
		if got, want := p.TrueEnergy(), flat.TrueEnergy(); math.Abs(got-want) > 1e-9*want {
			t.Errorf("n=%d: TrueEnergy %g, flat %g", n, got, want)
		}
		if got, want := p.TrueAvgWatts(), flat.TrueAvgWatts(); math.Abs(got-want) > 1e-9*want {
			t.Errorf("n=%d: TrueAvgWatts %g, flat %g", n, got, want)
		}
		// Full-span integral must equal the total energy.
		if got, want := p.EnergyUpTo(p.TotalDuration()+1), p.TrueEnergy(); math.Abs(got-want) > 1e-9*want {
			t.Errorf("n=%d: EnergyUpTo(total) %g, TrueEnergy %g", n, got, want)
		}
	}
}

// TestFlattenMergesLikeAppend: tiling a period whose last and first power
// levels are equal must merge across the seam, exactly as repeated Append
// calls would.
func TestFlattenMergesLikeAppend(t *testing.T) {
	var period Trace
	period = period.Append(0.01, 95) // equal to the tail → seams merge
	period = period.Append(0.02, 150)
	period = period.Append(0.01, 95)
	flat := Tile(period, 3).Flatten()
	// 3 repeats × 3 segments, minus 2 merged seams.
	if len(flat) != 7 {
		t.Fatalf("flattened into %d segments, want 7 (seams must merge)", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].Watts == flat[i-1].Watts {
			t.Fatalf("segments %d and %d share a power level — unmerged", i-1, i)
		}
	}
}

func TestEnergyUpToMatchesSegmentWalk(t *testing.T) {
	period := testPeriod()
	p := Tile(period, 11)
	flat := p.Flatten()
	// Walk the flat trace for the oracle integral at assorted times,
	// including segment boundaries and mid-period points.
	times := []float64{0, 1e-9, 0.013, 0.02, 0.045, 0.0451, 0.09, 0.23456, p.TotalDuration(), p.TotalDuration() * 2}
	for _, tm := range times {
		var want, acc float64
		for _, s := range flat {
			if acc+s.Duration <= tm {
				want += s.Duration * s.Watts
				acc += s.Duration
				continue
			}
			if tm > acc {
				want += (tm - acc) * s.Watts
			}
			acc = tm
			break
		}
		if got := p.EnergyUpTo(tm); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("EnergyUpTo(%g) = %g, want %g", tm, got, want)
		}
	}
}

// TestMeasurePeriodicMatchesMeasure is the fast-path correctness claim:
// sampling the tiled representation must agree with sampling the flat
// trace, window by window (ideal instrument; the noise stream is identical
// by construction since both draw one NormFloat64 per sample).
func TestMeasurePeriodicMatchesMeasure(t *testing.T) {
	m := New()
	period := testPeriod()
	for _, n := range []int{12, 57, 400} {
		p := Tile(period, n)
		got, err := m.MeasurePeriodic(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Measure(p.Flatten(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Samples) != len(want.Samples) {
			t.Fatalf("n=%d: %d samples, want %d", n, len(got.Samples), len(want.Samples))
		}
		for i := range want.Samples {
			if math.Abs(got.Samples[i]-want.Samples[i]) > 1e-9 {
				t.Fatalf("n=%d: sample %d = %.15g, want %.15g", n, i, got.Samples[i], want.Samples[i])
			}
		}
		if math.Abs(got.AvgWatts-want.AvgWatts) > 1e-9 {
			t.Errorf("n=%d: AvgWatts %g, want %g", n, got.AvgWatts, want.AvgWatts)
		}
		if math.Abs(got.EnergyJoules-want.EnergyJoules) > 1e-9 {
			t.Errorf("n=%d: EnergyJoules %g, want %g", n, got.EnergyJoules, want.EnergyJoules)
		}
		if got.Duration != want.Duration {
			t.Errorf("n=%d: Duration %g, want %g", n, got.Duration, want.Duration)
		}
	}
}

// TestMeasurePeriodicNoiseStream: with the same seed both paths must draw
// the identical noise sequence (one NormFloat64 per sample).
func TestMeasurePeriodicNoiseStream(t *testing.T) {
	m := New()
	p := Tile(testPeriod(), 60)
	got, err := m.MeasurePeriodic(p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Measure(p.Flatten(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Samples {
		if math.Abs(got.Samples[i]-want.Samples[i]) > 1e-9 {
			t.Fatalf("noisy sample %d = %.15g, want %.15g", i, got.Samples[i], want.Samples[i])
		}
	}
}

// TestMeasurePeriodicRangeClip: clipping and the Overloaded flag behave as
// on the flat path.
func TestMeasurePeriodicRangeClip(t *testing.T) {
	m := New()
	m.RangeWatts = 150
	p := Tile(testPeriod(), 60)
	got, err := m.MeasurePeriodic(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Overloaded {
		t.Error("210 W segments on a 150 W range did not flag Overloaded")
	}
	for i, w := range got.Samples {
		if w > m.RangeWatts {
			t.Fatalf("sample %d = %g exceeds the %g W range", i, w, m.RangeWatts)
		}
	}
}

func TestMeasurePeriodicTooShort(t *testing.T) {
	m := New()
	if _, err := m.MeasurePeriodic(Tile(testPeriod(), 2), nil); err != ErrTooShort {
		t.Errorf("90 ms waveform: err = %v, want ErrTooShort", err)
	}
	if _, err := m.MeasurePeriodic(Tile(nil, 5), nil); err != ErrTooShort {
		t.Errorf("empty period: err = %v, want ErrTooShort", err)
	}
	if _, err := m.MeasurePeriodic(Tile(testPeriod(), 0), nil); err != ErrTooShort {
		t.Errorf("zero repeats: err = %v, want ErrTooShort", err)
	}
}

// TestMeasurePeriodicAllocsPinned pins the pooled metering hot path: once
// the meter's prefix scratch and the measurement pool are warm, a
// measure/release cycle must not allocate per run. The budget of 1
// tolerates a GC emptying the pool mid-measurement; the unpooled path
// cost 3+ (Measurement, Samples, two prefix slices).
func TestMeasurePeriodicAllocsPinned(t *testing.T) {
	m := New()
	p := Tile(testPeriod(), 200)
	rng := rand.New(rand.NewSource(7))
	// Warm the pool and the prefix scratch.
	for i := 0; i < 4; i++ {
		got, err := m.MeasurePeriodic(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseMeasurement(got)
	}
	allocs := testing.AllocsPerRun(50, func() {
		got, err := m.MeasurePeriodic(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseMeasurement(got)
	})
	if allocs > 1 {
		t.Fatalf("MeasurePeriodic allocates %.1f objects per pooled run, want <= 1", allocs)
	}
}

// TestReleaseMeasurementReuse: a released Measurement's storage must come
// back zeroed — no stale samples, flags or fault accounting may leak from
// the previous owner, and nil releases must be harmless.
func TestReleaseMeasurementReuse(t *testing.T) {
	ReleaseMeasurement(nil)
	stale := newMeasurement(8)
	stale.Samples = append(stale.Samples, 1, 2, 3)
	stale.Overloaded = true
	stale.Dropped = 5
	stale.Valid = []bool{false}
	ReleaseMeasurement(stale)
	fresh := newMeasurement(2)
	if len(fresh.Samples) != 0 || fresh.Overloaded || fresh.Dropped != 0 || fresh.Valid != nil {
		t.Fatalf("recycled Measurement not zeroed: %+v", fresh)
	}
	if cap(fresh.Samples) < 2 {
		t.Fatalf("recycled Samples capacity %d, want >= 2", cap(fresh.Samples))
	}
}
