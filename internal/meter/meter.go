// Package meter simulates the Yokogawa WT1600 digital power meter the paper
// uses (Section II-C): it observes the machine's wall power as a piecewise-
// constant trace, samples voltage×current every 50 ms, and derives average
// power and accumulated energy from the samples — including the sampling
// noise and quantization a real instrument adds. The paper sizes its runs
// so every measurement covers at least 10 samples (≥ 500 ms); the harness
// does the same.
package meter

import (
	"errors"
	"math/rand"
	"sync"

	"gpuperf/internal/fault"
	"gpuperf/internal/obs"
)

// DefaultSamplePeriod is the WT1600's 50 ms update interval.
const DefaultSamplePeriod = 0.050

// DefaultNoiseStdDev is the per-sample measurement noise in watts. The
// WT1600 is a precision instrument; at a few hundred watts full scale its
// basic accuracy works out to roughly a watt of per-reading uncertainty.
const DefaultNoiseStdDev = 1.2

// MinSamples is the paper's floor of sample points per measurement.
const MinSamples = 10

// Segment is a stretch of constant wall power.
type Segment struct {
	Duration float64 // seconds
	Watts    float64
}

// Trace is a piecewise-constant wall-power waveform.
type Trace []Segment

// TotalDuration returns the trace length in seconds.
func (t Trace) TotalDuration() float64 {
	var d float64
	for _, s := range t {
		d += s.Duration
	}
	return d
}

// TrueEnergy integrates the trace exactly (diagnostics / oracle).
func (t Trace) TrueEnergy() float64 {
	var e float64
	for _, s := range t {
		e += s.Duration * s.Watts
	}
	return e
}

// TrueAvgWatts returns the exact average power of the trace.
func (t Trace) TrueAvgWatts() float64 {
	d := t.TotalDuration()
	if d == 0 {
		return 0
	}
	return t.TrueEnergy() / d
}

// Append adds a segment, merging with the previous one when the power level
// is identical (keeps long repeated-kernel traces compact).
func (t Trace) Append(duration, watts float64) Trace {
	if duration <= 0 {
		return t
	}
	if n := len(t); n > 0 && t[n-1].Watts == watts { //gpulint:ignore unitsafety -- segments merge only on bit-identical power levels
		t[n-1].Duration += duration
		return t
	}
	return append(t, Segment{duration, watts})
}

// Measurement is what the instrument reports for one observed run.
type Measurement struct {
	Samples      []float64 // per-50ms power readings, watts
	AvgWatts     float64   // mean of samples
	EnergyJoules float64   // sample-integrated energy
	Duration     float64   // observed duration, seconds
	// Overloaded is set when any reading hit the configured measurement
	// range: the clipped readings understate the true power, exactly as a
	// real instrument flags OL on a mis-ranged channel.
	Overloaded bool

	// Valid flags, per sample, whether the reading is genuine (true) or
	// was reconstructed by interpolation after a detected instrument
	// fault (false). nil — the common case — means every sample is
	// genuine; the slice is only allocated when a fault actually fired,
	// so fault-free measurements stay structurally identical to runs
	// without any fault campaign attached.
	Valid []bool
	// Per-measurement fault accounting (all zero on a clean measurement):
	// how many samples were dropped, spiked or stuck, and how many were
	// filled in by interpolation (= the number of false entries in Valid).
	Dropped      int
	Spiked       int
	Stuck        int
	Interpolated int
}

// Degraded reports whether any sample had to be reconstructed — the
// energy integral then carries interpolation error on top of noise.
func (m *Measurement) Degraded() bool { return m.Interpolated > 0 }

// Confidence is the fraction of genuine samples backing the integral:
// 1 for a clean measurement, approaching 0 as reconstruction dominates.
func (m *Measurement) Confidence() float64 {
	if m.Valid == nil || len(m.Samples) == 0 {
		return 1
	}
	return float64(len(m.Samples)-m.Interpolated) / float64(len(m.Samples))
}

// Meter is a configured instrument.
type Meter struct {
	SamplePeriod float64
	NoiseStdDev  float64
	// RangeWatts is the selected measurement range; readings clip there
	// and set Measurement.Overloaded. Zero means auto-range (no clipping).
	RangeWatts float64
	// Gain is the channel's calibration gain: every reading (noise
	// included, range clipping excluded) is scaled by it, modeling the
	// per-instrument calibration drift a real fleet of meters exhibits.
	// Zero means 1.0 — a perfectly calibrated channel — so existing
	// meters and all single-board goldens are untouched. The fleet
	// generator draws each device's gain from its jitter profile.
	Gain float64
	// Faults, when non-nil, injects instrument failures (sample dropout,
	// transient spikes, stuck readings) into every measurement — see
	// faults.go. The injector's streams are independent of the sampling-
	// noise rng, so attaching a zero-probability campaign changes nothing.
	Faults *fault.Injector
	// Obs, when non-nil, receives per-measurement counts (windows taken,
	// dropped, spiked, stuck, interpolated). The handles are nil-safe, so
	// a partially populated Obs is fine.
	Obs *Obs
	// Fanout, when non-nil, streams every finalized sample of every
	// successful measurement — the live-telemetry tap a collector hangs
	// off the instrument. It observes samples after the fault pipeline
	// (valid=false marks interpolated reconstructions) and must not
	// mutate anything the measurement owns; it never affects the
	// measurement itself, so artifacts are byte-identical with or
	// without a fanout attached.
	Fanout SampleFanout

	// Period prefix-sum scratch reused across MeasurePeriodic calls. A
	// Meter is single-goroutine (it already shares the caller's rng), so
	// plain fields suffice — this removes two allocations from every
	// metered run, the campaign stack's per-cell hot path.
	scratchEnds   []float64
	scratchEnergy []float64
}

// SampleFanout receives one finalized sample: its window index within
// the measurement, the measured watts, and whether the reading is
// genuine (false: reconstructed by interpolation).
type SampleFanout func(index int, watts float64, valid bool)

// Obs holds the metric handles a harness wires into the instrument (the
// driver registers them per board — see driver.Device.Observe). A nil Obs
// means the meter is unobserved and pays only a pointer check.
type Obs struct {
	Measurements *obs.Counter // measurements finalized
	Samples      *obs.Counter // sampling windows taken
	Dropped      *obs.Counter // windows lost to sample dropout
	Spiked       *obs.Counter // windows hit by transient spikes
	Stuck        *obs.Counter // windows flagged as stuck-ADC repeats
	Interpolated *obs.Counter // windows reconstructed by interpolation
}

// New returns a WT1600-like meter on auto-range.
func New() *Meter {
	return &Meter{SamplePeriod: DefaultSamplePeriod, NoiseStdDev: DefaultNoiseStdDev}
}

// ErrTooShort is returned when a trace covers fewer than MinSamples
// sampling periods — the same constraint that makes the paper stretch
// sub-500 ms benchmarks by repeating their kernels.
var ErrTooShort = errors.New("meter: trace shorter than the minimum sampling window")

// measurementPool recycles Measurement structs and their sample storage.
// Metered sweeps produce one Measurement per cell and read only a few
// scalars from most of them; recycling the ~100-entry sample slices is a
// measurable share of the campaign hot path's garbage.
var measurementPool = sync.Pool{New: func() any { return new(Measurement) }}

// newMeasurement returns a zeroed Measurement whose Samples slice has
// capacity for n readings, reusing pooled storage when available.
func newMeasurement(n int) *Measurement {
	out := measurementPool.Get().(*Measurement)
	if cap(out.Samples) < n {
		out.Samples = make([]float64, 0, n)
	}
	*out = Measurement{Samples: out.Samples[:0]}
	return out
}

// ReleaseMeasurement returns a Measurement to the internal pool. Only the
// sole owner may call it — typically a harness that has copied the summary
// scalars out of a metered run and is about to drop the result — and the
// Measurement must not be touched afterwards. Releasing is optional;
// unreleased Measurements are ordinary garbage.
func ReleaseMeasurement(m *Measurement) {
	if m == nil {
		return
	}
	measurementPool.Put(m)
}

// Measure samples the trace every SamplePeriod and reports average power
// and energy. The rng drives per-sample gaussian noise; pass nil for an
// ideal (noise-free) instrument.
func (m *Meter) Measure(trace Trace, rng *rand.Rand) (*Measurement, error) {
	total := trace.TotalDuration()
	if total < float64(MinSamples)*m.SamplePeriod {
		return nil, ErrTooShort
	}
	n := int(total / m.SamplePeriod) // complete windows only, like the instrument
	out := newMeasurement(n)

	seg, segUsed := 0, 0.0
	for i := 0; i < n; i++ {
		// Integrate true power over this 50 ms window.
		remaining := m.SamplePeriod
		var joules float64
		for remaining > 1e-15 && seg < len(trace) {
			avail := trace[seg].Duration - segUsed
			step := avail
			if step > remaining {
				step = remaining
			}
			joules += step * trace[seg].Watts
			segUsed += step
			remaining -= step
			if segUsed >= trace[seg].Duration-1e-15 {
				seg++
				segUsed = 0
			}
		}
		w := joules / m.SamplePeriod
		if rng != nil && m.NoiseStdDev > 0 {
			w += m.NoiseStdDev * rng.NormFloat64()
		}
		if m.Gain != 0 {
			w *= m.Gain
		}
		if m.RangeWatts > 0 && w > m.RangeWatts {
			w = m.RangeWatts
			out.Overloaded = true
		}
		out.Samples = append(out.Samples, w)
	}
	return m.finalize(out)
}

// finalize applies the instrument-fault pipeline (no-op without an
// injector) and derives the summary statistics from the surviving
// samples. Shared by Measure and MeasurePeriodic.
func (m *Meter) finalize(out *Measurement) (*Measurement, error) {
	err := m.injectFaults(out)
	if o := m.Obs; o != nil {
		o.Measurements.Inc()
		o.Samples.Add(int64(len(out.Samples)))
		o.Dropped.Add(int64(out.Dropped))
		o.Spiked.Add(int64(out.Spiked))
		o.Stuck.Add(int64(out.Stuck))
		o.Interpolated.Add(int64(out.Interpolated))
	}
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, w := range out.Samples {
		sum += w
	}
	out.AvgWatts = sum / float64(len(out.Samples))
	out.Duration = float64(len(out.Samples)) * m.SamplePeriod
	out.EnergyJoules = sum * m.SamplePeriod
	if f := m.Fanout; f != nil {
		for i, w := range out.Samples {
			f(i, w, out.Valid == nil || out.Valid[i])
		}
	}
	return out, nil
}
