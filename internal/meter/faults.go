package meter

import "gpuperf/internal/fault"

// Instrument-fault pipeline. Three failure modes of a physical meter are
// injected into the raw sample vector and then *detected* the way a real
// acquisition pipeline would detect them — a gap in the sample stream, an
// implausible reading, a flat run from a hung ADC — and the affected
// windows are reconstructed by linear interpolation between the nearest
// genuine neighbours. The measurement keeps a per-window validity mask and
// fault counts so downstream consumers know how much of the energy
// integral is reconstruction rather than observation.
//
// Every pass is gated on Injector.Enabled, so a profile with zero
// probability at a point leaves the measurement bit-for-bit identical to
// one taken with no campaign attached.

// SpikeThresholdWatts is the plausibility ceiling of the acquisition
// pipeline: no simulated system draws remotely close to 2 kW at the wall,
// so any reading above it is discarded as a glitch.
const SpikeThresholdWatts = 2000

// DefaultSpikeWatts is the default magnitude an injected spike adds —
// comfortably above SpikeThresholdWatts so default-parameter spikes are
// always caught. A profile param below the threshold models glitches that
// evade detection (and silently bias the integral, as on real hardware).
const DefaultSpikeWatts = 2500

// DefaultStuckRun is the default length, in samples, of a stuck-reading
// run. Detection needs runs of >= 3 identical readings, which gaussian
// sampling noise makes (almost surely) impossible naturally.
const DefaultStuckRun = 5

// injectFaults runs the inject→detect→interpolate pipeline over the
// sample vector. It returns an error — classified as a transient meter
// fault — when no genuine sample survives, since an all-reconstructed
// "measurement" observes nothing.
func (m *Meter) injectFaults(out *Measurement) error {
	in := m.Faults
	n := len(out.Samples)
	if in == nil || n == 0 {
		return nil
	}
	var invalid []bool
	mark := func(i int) {
		if invalid == nil {
			invalid = make([]bool, n)
		}
		invalid[i] = true
	}

	// Sample dropout: the instrument returned nothing for the window.
	if in.Enabled(fault.MeterDrop) {
		for i := 0; i < n; i++ {
			if in.Hit(fault.MeterDrop) {
				out.Samples[i] = 0
				out.Dropped++
				mark(i)
			}
		}
	}

	// Transient spikes: inject an out-of-range excursion, then detect by
	// the plausibility threshold. Dropped windows cannot also spike.
	if in.Enabled(fault.MeterSpike) {
		magnitude := in.Param(fault.MeterSpike, DefaultSpikeWatts)
		for i := 0; i < n; i++ {
			if (invalid == nil || !invalid[i]) && in.Hit(fault.MeterSpike) {
				out.Samples[i] += magnitude
			}
		}
		for i := 0; i < n; i++ {
			if out.Samples[i] > SpikeThresholdWatts && (invalid == nil || !invalid[i]) {
				out.Spiked++
				mark(i)
			}
		}
	}

	// Stuck reading: at most once per measurement, the instrument repeats
	// one value for a run of windows. Detected as a run of >= 3 exactly
	// equal readings; the first window of the run is the genuine one.
	if in.Enabled(fault.MeterStuck) && in.Hit(fault.MeterStuck) {
		run := int(in.Param(fault.MeterStuck, DefaultStuckRun))
		if run < 3 {
			run = 3
		}
		start := in.Intn(fault.MeterStuck, n)
		for i := start + 1; i < n && i < start+run; i++ {
			out.Samples[i] = out.Samples[start]
		}
		for i := 0; i < n; {
			j := i + 1
			for j < n && out.Samples[j] == out.Samples[i] { //gpulint:ignore unitsafety -- a hung ADC repeats the reading bit-exactly; that is the detection signature
				j++
			}
			if j-i >= 3 {
				for k := i + 1; k < j; k++ {
					if invalid == nil || !invalid[k] {
						out.Stuck++
						mark(k)
					}
				}
			}
			i = j
		}
	}

	if invalid == nil {
		return nil // enabled but nothing fired: bit-identical measurement
	}
	bad := 0
	for _, iv := range invalid {
		if iv {
			bad++
		}
	}
	if bad == n {
		return &fault.Error{Point: fault.MeterDrop, Scope: "meter",
			Err: errNoValidSamples}
	}
	interpolate(out.Samples, invalid)
	out.Interpolated = bad
	out.Valid = make([]bool, n)
	for i := range invalid {
		out.Valid[i] = !invalid[i]
	}
	return nil
}

// errNoValidSamples reports a measurement with zero genuine windows.
var errNoValidSamples = ErrAllSamplesInvalid

// ErrAllSamplesInvalid is returned (wrapped in a *fault.Error) when every
// sampling window of a measurement was lost to instrument faults.
var ErrAllSamplesInvalid = errTooFaulty{}

type errTooFaulty struct{}

func (errTooFaulty) Error() string {
	return "meter: every sampling window lost to instrument faults"
}

// interpolate reconstructs the invalid samples in place: linear
// interpolation between the nearest valid neighbours, with flat
// extrapolation at the edges. At least one valid sample must exist.
func interpolate(samples []float64, invalid []bool) {
	n := len(samples)
	prev := -1 // index of the last valid sample seen
	for i := 0; i < n; i++ {
		if !invalid[i] {
			prev = i
			continue
		}
		// Find the next valid sample.
		next := -1
		for j := i + 1; j < n; j++ {
			if !invalid[j] {
				next = j
				break
			}
		}
		switch {
		case prev < 0 && next < 0:
			// unreachable: the caller guarantees a valid sample exists
		case prev < 0:
			samples[i] = samples[next]
		case next < 0:
			samples[i] = samples[prev]
		default:
			t := float64(i-prev) / float64(next-prev)
			samples[i] = samples[prev] + t*(samples[next]-samples[prev])
		}
	}
}
