package meter

import (
	"math"
	"testing"
)

// TestGainScalesReadings: a calibration gain scales every reading on both
// measurement paths, and the zero value means a perfectly calibrated
// channel.
func TestGainScalesReadings(t *testing.T) {
	trace := Trace{{0.5, 100}, {0.5, 140}}
	ref := New()
	ref.NoiseStdDev = 0
	want, err := ref.Measure(trace, nil)
	if err != nil {
		t.Fatal(err)
	}

	m := New()
	m.NoiseStdDev = 0
	m.Gain = 1.05
	got, err := m.Measure(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Samples {
		if math.Abs(got.Samples[i]-1.05*want.Samples[i]) > 1e-9 {
			t.Fatalf("flat sample %d = %g, want %g", i, got.Samples[i], 1.05*want.Samples[i])
		}
	}
	if math.Abs(got.AvgWatts-1.05*want.AvgWatts) > 1e-9 {
		t.Fatalf("AvgWatts = %g, want %g", got.AvgWatts, 1.05*want.AvgWatts)
	}

	p := Tile(trace, 1)
	pref, err := ref.MeasurePeriodic(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := m.MeasurePeriodic(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pg.Samples {
		if math.Abs(pg.Samples[i]-1.05*pref.Samples[i]) > 1e-9 {
			t.Fatalf("periodic sample %d = %g, want %g", i, pg.Samples[i], 1.05*pref.Samples[i])
		}
	}

	// Zero gain is the calibrated channel: identical to the reference.
	z := New()
	z.NoiseStdDev = 0
	zm, err := z.Measure(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if zm.AvgWatts != want.AvgWatts {
		t.Fatalf("zero gain changed AvgWatts: %g vs %g", zm.AvgWatts, want.AvgWatts)
	}

	// Gain applies before range clipping, so an over-range gained reading
	// still clips and flags overload.
	c := New()
	c.NoiseStdDev = 0
	c.Gain = 2.0
	c.RangeWatts = 150
	cm, err := c.Measure(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.Overloaded {
		t.Error("gained reading above range did not flag Overloaded")
	}
	for i, w := range cm.Samples {
		if w > 150 {
			t.Fatalf("sample %d = %g exceeds the 150 W range", i, w)
		}
	}
}
