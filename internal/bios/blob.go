package bios

import (
	"bytes"
	"fmt"

	"gpuperf/internal/clock"
)

// The paper does not patch a bare VBIOS file: the image is *embedded in the
// proprietary driver's binary*, and the method (Section II-B, the Gdev
// documentation it cites) is to locate the image inside that blob, patch
// the boot level in place, and fix the checksum. These helpers reproduce
// the blob workflow: scan an arbitrary byte blob for embedded images,
// validate candidates, and patch in place.

// FindImages scans a blob for embedded VBIOS images and returns the byte
// offsets of every *valid* image (magic found, checksum and structure
// verified). Invalid magic hits — strings that merely look like the magic —
// are skipped, as the real method must.
func FindImages(blob []byte) []int {
	var out []int
	for at := 0; ; {
		i := bytes.Index(blob[at:], []byte(Magic))
		if i < 0 {
			return out
		}
		pos := at + i
		if pos+ImageSize <= len(blob) {
			if _, err := Parse(blob[pos : pos+ImageSize]); err == nil {
				out = append(out, pos)
			}
		}
		at = pos + 1
	}
}

// EmbedImage builds a synthetic "driver blob": the image surrounded by
// opaque padding, as test rigs and demos need. pre and post are the pad
// sizes. Padding bytes avoid accidental magic collisions.
func EmbedImage(img []byte, pre, post int) []byte {
	blob := make([]byte, 0, pre+len(img)+post)
	pad := func(n int, salt byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i)*7 + salt
			if p[i] == Magic[0] {
				p[i]++
			}
		}
		return p
	}
	blob = append(blob, pad(pre, 3)...)
	blob = append(blob, img...)
	blob = append(blob, pad(post, 11)...)
	return blob
}

// PatchBlob locates the single embedded VBIOS image in a driver blob and
// patches its boot pair in place. It fails if the blob contains no valid
// image or more than one (patching the wrong one would brick the boot —
// the caller must disambiguate).
func PatchBlob(blob []byte, p clock.Pair) error {
	offsets := FindImages(blob)
	switch len(offsets) {
	case 0:
		return fmt.Errorf("bios: no valid VBIOS image embedded in %d-byte blob", len(blob))
	case 1:
	default:
		return fmt.Errorf("bios: %d VBIOS images embedded; refusing to guess", len(offsets))
	}
	img := blob[offsets[0] : offsets[0]+ImageSize]
	return PatchBootPair(img, p)
}
