// Package bios implements a synthetic VBIOS image format.
//
// The paper controls GPU clocks by patching the BIOS image embedded in the
// proprietary driver so the GPU boots at a chosen performance level
// (Section II-B, the Gdev method). We reproduce that control path: a board's
// available frequency/voltage levels are not constants inside the simulator —
// they are data carried by a binary VBIOS image that the driver parses at
// boot, and changing the boot clocks means patching the image (and fixing
// its checksum), exactly as on real hardware.
//
// Image layout (little endian):
//
//	offset size  field
//	0      4     magic "GVBS"
//	4      2     format version (currently 1)
//	6      2     header size (64)
//	8      32    board name, NUL padded
//	40     1     generation (0 Tesla, 1 Fermi, 2 Kepler)
//	41     1     number of performance-table entries (always 3: L, M, H)
//	42     2     performance-table offset
//	44     1     boot core level (0 L, 1 M, 2 H)
//	45     1     boot memory level
//	46     2     reserved
//	48     4     total image size
//	52     12    reserved
//	64     ...   performance table, 16 bytes per entry
//	last   1     checksum byte: sum of all image bytes ≡ 0 (mod 256)
//
// Performance-table entry (16 bytes):
//
//	0  1  level id (0 L, 1 M, 2 H)
//	1  1  pair mask: bit m set ⇔ (this core level, mem level m) is valid
//	2  2  core clock, MHz
//	4  2  memory clock, MHz
//	6  2  core voltage, mV
//	8  2  memory voltage, mV
//	10 6  reserved
package bios

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

// Magic identifies a synthetic VBIOS image.
const Magic = "GVBS"

// Version is the current image format version.
const Version = 1

const (
	headerSize  = 64
	entrySize   = 16
	entryCount  = 3
	nameOffset  = 8
	nameSize    = 32
	genOffset   = 40
	countOffset = 41
	tableOffPos = 42
	bootCorePos = 44
	bootMemPos  = 45
	sizeOffset  = 48
	// ImageSize is the total size of a well-formed image.
	ImageSize = headerSize + entryCount*entrySize + 1
)

// Entry is one decoded performance-table row.
type Entry struct {
	Level    arch.FreqLevel
	PairMask byte // bit m set ⇔ memory level m valid with this core level
	CoreMHz  float64
	MemMHz   float64
	CoreMV   int
	MemMV    int
}

// Image is a decoded VBIOS image.
type Image struct {
	BoardName  string
	Generation arch.Generation
	Boot       clock.Pair
	Table      [entryCount]Entry
}

// Build synthesizes a VBIOS image for the given board with the default
// (H-H) boot clocks.
func Build(spec *arch.Spec) []byte {
	img := make([]byte, ImageSize)
	copy(img[0:4], Magic)
	binary.LittleEndian.PutUint16(img[4:6], Version)
	binary.LittleEndian.PutUint16(img[6:8], headerSize)
	copy(img[nameOffset:nameOffset+nameSize], spec.Name)
	img[genOffset] = byte(spec.Generation)
	img[countOffset] = entryCount
	binary.LittleEndian.PutUint16(img[tableOffPos:tableOffPos+2], headerSize)
	img[bootCorePos] = byte(arch.FreqHigh)
	img[bootMemPos] = byte(arch.FreqHigh)
	binary.LittleEndian.PutUint32(img[sizeOffset:sizeOffset+4], ImageSize)

	for i, l := range arch.Levels() {
		off := headerSize + i*entrySize
		img[off] = byte(l)
		var mask byte
		for _, m := range arch.Levels() {
			if spec.PairValid(l, m) {
				mask |= 1 << uint(m)
			}
		}
		img[off+1] = mask
		binary.LittleEndian.PutUint16(img[off+2:off+4], uint16(math.Round(spec.CoreFreqMHz(l))))
		binary.LittleEndian.PutUint16(img[off+4:off+6], uint16(math.Round(spec.MemFreqMHz(l))))
		binary.LittleEndian.PutUint16(img[off+6:off+8], uint16(math.Round(spec.CoreVoltage(l)*1000)))
		binary.LittleEndian.PutUint16(img[off+8:off+10], uint16(math.Round(spec.MemVoltage(l)*1000)))
	}
	FixChecksum(img)
	return img
}

// FixChecksum rewrites the final byte so the byte sum of the whole image is
// congruent to 0 mod 256 (the convention real VBIOS images use).
func FixChecksum(img []byte) {
	if len(img) == 0 {
		return
	}
	img[len(img)-1] = 0
	var sum byte
	for _, b := range img {
		sum += b
	}
	img[len(img)-1] = -sum
}

// ChecksumOK reports whether the image's byte sum is 0 mod 256.
func ChecksumOK(img []byte) bool {
	var sum byte
	for _, b := range img {
		sum += b
	}
	return sum == 0
}

// Parse decodes and validates a VBIOS image.
func Parse(img []byte) (*Image, error) {
	if len(img) < headerSize+1 {
		return nil, fmt.Errorf("bios: image truncated (%d bytes)", len(img))
	}
	if string(img[0:4]) != Magic {
		return nil, fmt.Errorf("bios: bad magic %q", string(img[0:4]))
	}
	if v := binary.LittleEndian.Uint16(img[4:6]); v != Version {
		return nil, fmt.Errorf("bios: unsupported version %d", v)
	}
	size := int(binary.LittleEndian.Uint32(img[sizeOffset : sizeOffset+4]))
	if size != len(img) {
		return nil, fmt.Errorf("bios: size field %d does not match image length %d", size, len(img))
	}
	if !ChecksumOK(img) {
		return nil, fmt.Errorf("bios: checksum mismatch")
	}
	count := int(img[countOffset])
	if count != entryCount {
		return nil, fmt.Errorf("bios: unexpected perf-table entry count %d", count)
	}
	tableOff := int(binary.LittleEndian.Uint16(img[tableOffPos : tableOffPos+2]))
	// The table must fit before the trailing checksum byte.
	if tableOff < headerSize || tableOff+count*entrySize > len(img)-1 {
		return nil, fmt.Errorf("bios: perf table overruns image")
	}

	out := &Image{
		BoardName:  strings.TrimRight(string(img[nameOffset:nameOffset+nameSize]), "\x00"),
		Generation: arch.Generation(img[genOffset]),
	}
	bootCore, bootMem := arch.FreqLevel(img[bootCorePos]), arch.FreqLevel(img[bootMemPos])
	if bootCore < arch.FreqLow || bootCore > arch.FreqHigh || bootMem < arch.FreqLow || bootMem > arch.FreqHigh {
		return nil, fmt.Errorf("bios: boot levels (%d, %d) out of range", bootCore, bootMem)
	}
	out.Boot = clock.Pair{Core: bootCore, Mem: bootMem}

	for i := 0; i < count; i++ {
		off := tableOff + i*entrySize
		e := Entry{
			Level:    arch.FreqLevel(img[off]),
			PairMask: img[off+1],
			CoreMHz:  float64(binary.LittleEndian.Uint16(img[off+2 : off+4])),
			MemMHz:   float64(binary.LittleEndian.Uint16(img[off+4 : off+6])),
			CoreMV:   int(binary.LittleEndian.Uint16(img[off+6 : off+8])),
			MemMV:    int(binary.LittleEndian.Uint16(img[off+8 : off+10])),
		}
		if int(e.Level) != i {
			return nil, fmt.Errorf("bios: perf-table entry %d has level id %d", i, e.Level)
		}
		out.Table[i] = e
	}
	for i := 1; i < count; i++ {
		if out.Table[i].CoreMHz < out.Table[i-1].CoreMHz || out.Table[i].MemMHz < out.Table[i-1].MemMHz {
			return nil, fmt.Errorf("bios: perf-table clocks not ascending")
		}
	}
	if !out.PairValid(out.Boot) {
		return nil, fmt.Errorf("bios: boot pair %s not in pair mask", out.Boot)
	}
	return out, nil
}

// PairValid reports whether the image's performance table exposes the pair.
func (im *Image) PairValid(p clock.Pair) bool {
	if p.Core < arch.FreqLow || p.Core > arch.FreqHigh || p.Mem < arch.FreqLow || p.Mem > arch.FreqHigh {
		return false
	}
	return im.Table[p.Core].PairMask&(1<<uint(p.Mem)) != 0
}

// ValidPairs enumerates the pairs the image exposes in Table III row order.
func (im *Image) ValidPairs() []clock.Pair {
	var out []clock.Pair
	for ci := 2; ci >= 0; ci-- {
		for mi := 2; mi >= 0; mi-- {
			p := clock.Pair{Core: arch.FreqLevel(ci), Mem: arch.FreqLevel(mi)}
			if im.PairValid(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// PatchBootPair rewrites the boot performance level inside a raw image and
// fixes the checksum. This is the in-simulation equivalent of the paper's
// BIOS-modding method for forcing a GPU to boot at chosen clocks. The image
// is validated first; patching to a pair the table does not expose fails.
func PatchBootPair(img []byte, p clock.Pair) error {
	decoded, err := Parse(img)
	if err != nil {
		return fmt.Errorf("bios: cannot patch: %w", err)
	}
	if !decoded.PairValid(p) {
		return fmt.Errorf("bios: %s does not expose pair %s", decoded.BoardName, p)
	}
	img[bootCorePos] = byte(p.Core)
	img[bootMemPos] = byte(p.Mem)
	FixChecksum(img)
	return nil
}
