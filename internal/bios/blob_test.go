package bios

import (
	"bytes"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

func TestFindImagesInBlob(t *testing.T) {
	img := Build(arch.GTX680())
	blob := EmbedImage(img, 4096, 2048)
	offsets := FindImages(blob)
	if len(offsets) != 1 {
		t.Fatalf("found %d images, want 1", len(offsets))
	}
	if offsets[0] != 4096 {
		t.Errorf("image at offset %d, want 4096", offsets[0])
	}
}

func TestFindImagesSkipsFakeMagic(t *testing.T) {
	// A blob containing the magic string but no valid image.
	blob := append([]byte("....GVBS junk that is not an image...."), make([]byte, 256)...)
	if got := FindImages(blob); len(got) != 0 {
		t.Errorf("found %d images in junk, want 0", len(got))
	}
	// Magic too close to the end to hold an image.
	tail := append(make([]byte, 10), []byte(Magic)...)
	if got := FindImages(tail); len(got) != 0 {
		t.Errorf("found %d images in truncated tail", len(got))
	}
}

func TestFindImagesMultiple(t *testing.T) {
	a := Build(arch.GTX460())
	b := Build(arch.GTX680())
	blob := append(EmbedImage(a, 100, 50), EmbedImage(b, 64, 64)...)
	offsets := FindImages(blob)
	if len(offsets) != 2 {
		t.Fatalf("found %d images, want 2", len(offsets))
	}
}

func TestPatchBlob(t *testing.T) {
	img := Build(arch.GTX680())
	blob := EmbedImage(img, 1000, 1000)
	target := clock.Pair{Core: arch.FreqMid, Mem: arch.FreqLow}
	if err := PatchBlob(blob, target); err != nil {
		t.Fatal(err)
	}
	offsets := FindImages(blob)
	if len(offsets) != 1 {
		t.Fatal("patched blob lost its image")
	}
	decoded, err := Parse(blob[offsets[0] : offsets[0]+ImageSize])
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Boot != target {
		t.Errorf("boot pair %s after blob patch, want %s", decoded.Boot, target)
	}
}

func TestPatchBlobRefusesAmbiguity(t *testing.T) {
	a := EmbedImage(Build(arch.GTX460()), 10, 10)
	b := EmbedImage(Build(arch.GTX460()), 10, 10)
	blob := append(a, b...)
	if err := PatchBlob(blob, clock.DefaultPair()); err == nil {
		t.Error("PatchBlob accepted a blob with two images")
	}
	if err := PatchBlob([]byte("no image here"), clock.DefaultPair()); err == nil {
		t.Error("PatchBlob accepted an imageless blob")
	}
}

func TestPatchBlobRejectsUnexposedPair(t *testing.T) {
	blob := EmbedImage(Build(arch.GTX680()), 128, 128)
	before := append([]byte(nil), blob...)
	if err := PatchBlob(blob, clock.Pair{Core: arch.FreqLow, Mem: arch.FreqLow}); err == nil {
		t.Error("PatchBlob accepted (L-L) on GTX 680")
	}
	if !bytes.Equal(blob, before) {
		t.Error("failed blob patch modified the blob")
	}
}

func TestEmbedImagePaddingAvoidsMagic(t *testing.T) {
	img := Build(arch.GTX285())
	blob := EmbedImage(img, 8192, 8192)
	// The only magic occurrence must be the embedded image itself.
	count := bytes.Count(blob, []byte(Magic))
	if count != 1 {
		t.Errorf("%d magic occurrences in blob, want 1", count)
	}
}
