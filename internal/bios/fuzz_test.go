package bios

import (
	"bytes"
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

// FuzzParse drives the VBIOS decoder with arbitrary bytes: it must reject
// or accept without panicking, and anything it accepts must satisfy the
// decoder's own invariants (round-trip through patch included).
func FuzzParse(f *testing.F) {
	for _, spec := range arch.AllBoards() {
		f.Add(Build(spec))
	}
	f.Add([]byte{})
	f.Add([]byte("GVBS"))
	f.Add(bytes.Repeat([]byte{0xFF}, ImageSize))
	corrupted := Build(arch.GTX680())
	corrupted[40] = 200
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, img []byte) {
		decoded, err := Parse(img)
		if err != nil {
			return
		}
		// Accepted images must be internally consistent.
		if !ChecksumOK(img) {
			t.Fatal("accepted image with bad checksum")
		}
		if !decoded.PairValid(decoded.Boot) {
			t.Fatal("accepted image whose boot pair is not exposed")
		}
		// Patching to any exposed pair must keep the image parseable.
		own := append([]byte(nil), img...)
		for _, p := range decoded.ValidPairs() {
			if err := PatchBootPair(own, p); err != nil {
				t.Fatalf("patch to exposed pair %s failed: %v", p, err)
			}
			if _, err := Parse(own); err != nil {
				t.Fatalf("patched image unparseable: %v", err)
			}
		}
		_ = clock.Pair(decoded.Boot)
	})
}
