package bios

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
)

func TestBuildParseRoundTrip(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		img := Build(spec)
		if len(img) != ImageSize {
			t.Fatalf("%s: image size %d, want %d", spec.Name, len(img), ImageSize)
		}
		decoded, err := Parse(img)
		if err != nil {
			t.Fatalf("%s: Parse: %v", spec.Name, err)
		}
		if decoded.BoardName != spec.Name {
			t.Errorf("board name %q, want %q", decoded.BoardName, spec.Name)
		}
		if decoded.Generation != spec.Generation {
			t.Errorf("%s: generation %v, want %v", spec.Name, decoded.Generation, spec.Generation)
		}
		if decoded.Boot != clock.DefaultPair() {
			t.Errorf("%s: boot pair %s, want (H-H)", spec.Name, decoded.Boot)
		}
		for _, l := range arch.Levels() {
			e := decoded.Table[l]
			if e.CoreMHz != math.Round(spec.CoreFreqMHz(l)) {
				t.Errorf("%s level %s: core %g MHz, want %g", spec.Name, l, e.CoreMHz, spec.CoreFreqMHz(l))
			}
			if e.MemMHz != math.Round(spec.MemFreqMHz(l)) {
				t.Errorf("%s level %s: mem %g MHz, want %g", spec.Name, l, e.MemMHz, spec.MemFreqMHz(l))
			}
			wantCoreMV := int(math.Round(spec.CoreVoltage(l) * 1000))
			if e.CoreMV != wantCoreMV {
				t.Errorf("%s level %s: core %d mV, want %d", spec.Name, l, e.CoreMV, wantCoreMV)
			}
		}
	}
}

func TestImagePairsMatchSpec(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		decoded, err := Parse(Build(spec))
		if err != nil {
			t.Fatal(err)
		}
		specPairs := clock.ValidPairs(spec)
		imgPairs := decoded.ValidPairs()
		if len(specPairs) != len(imgPairs) {
			t.Fatalf("%s: %d pairs in image, want %d", spec.Name, len(imgPairs), len(specPairs))
		}
		for i := range specPairs {
			if specPairs[i] != imgPairs[i] {
				t.Errorf("%s: pair %d = %s, want %s", spec.Name, i, imgPairs[i], specPairs[i])
			}
		}
	}
}

func TestChecksum(t *testing.T) {
	img := Build(arch.GTX680())
	if !ChecksumOK(img) {
		t.Fatal("fresh image has bad checksum")
	}
	img[10]++
	if ChecksumOK(img) {
		t.Fatal("corrupted image passes checksum")
	}
	FixChecksum(img)
	if !ChecksumOK(img) {
		t.Fatal("FixChecksum did not repair the image")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	fresh := func() []byte { return Build(arch.GTX480()) }

	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated", func(b []byte) []byte { return b[:headerSize/2] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; FixChecksum(b); return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; FixChecksum(b); return b }},
		{"bad checksum", func(b []byte) []byte { b[20]++; return b }},
		{"bad size field", func(b []byte) []byte { b[sizeOffset]++; FixChecksum(b); return b }},
		{"bad entry count", func(b []byte) []byte { b[countOffset] = 7; FixChecksum(b); return b }},
		{"table overrun", func(b []byte) []byte {
			b[tableOffPos] = 0xFF
			b[tableOffPos+1] = 0x0F
			FixChecksum(b)
			return b
		}},
		{"bad boot level", func(b []byte) []byte { b[bootCorePos] = 9; FixChecksum(b); return b }},
		{"boot pair not exposed", func(b []byte) []byte {
			// (L-L) is not exposed on GTX 480's Core-L row? It is; use GTX 680 path below.
			b[bootCorePos] = byte(arch.FreqLow)
			b[bootMemPos] = byte(arch.FreqMid) // (L-M) invalid on GTX 480
			FixChecksum(b)
			return b
		}},
		{"shuffled level ids", func(b []byte) []byte {
			b[headerSize], b[headerSize+entrySize] = b[headerSize+entrySize], b[headerSize]
			FixChecksum(b)
			return b
		}},
	}
	for _, c := range corruptions {
		img := c.mut(fresh())
		if _, err := Parse(img); err == nil {
			t.Errorf("Parse accepted image with %s", c.name)
		}
	}
}

func TestPatchBootPair(t *testing.T) {
	img := Build(arch.GTX680())
	target := clock.Pair{Core: arch.FreqMid, Mem: arch.FreqLow}
	if err := PatchBootPair(img, target); err != nil {
		t.Fatalf("PatchBootPair: %v", err)
	}
	if !ChecksumOK(img) {
		t.Fatal("patched image has bad checksum")
	}
	decoded, err := Parse(img)
	if err != nil {
		t.Fatalf("Parse after patch: %v", err)
	}
	if decoded.Boot != target {
		t.Errorf("boot pair %s after patch, want %s", decoded.Boot, target)
	}
}

func TestPatchBootPairRejectsUnexposedPair(t *testing.T) {
	img := Build(arch.GTX680())
	before := append([]byte(nil), img...)
	if err := PatchBootPair(img, clock.Pair{Core: arch.FreqLow, Mem: arch.FreqLow}); err == nil {
		t.Fatal("PatchBootPair accepted (L-L) on GTX 680")
	}
	if !bytes.Equal(img, before) {
		t.Error("failed patch modified the image")
	}
}

func TestPatchBootPairRejectsCorruptImage(t *testing.T) {
	img := Build(arch.GTX285())
	img[30]++
	if err := PatchBootPair(img, clock.DefaultPair()); err == nil {
		t.Fatal("PatchBootPair accepted corrupt image")
	}
}

func TestPatchAllValidPairsRoundTrip(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		for _, p := range clock.ValidPairs(spec) {
			img := Build(spec)
			if err := PatchBootPair(img, p); err != nil {
				t.Fatalf("%s %s: %v", spec.Name, p, err)
			}
			decoded, err := Parse(img)
			if err != nil {
				t.Fatalf("%s %s: %v", spec.Name, p, err)
			}
			if decoded.Boot != p {
				t.Errorf("%s: boot %s, want %s", spec.Name, decoded.Boot, p)
			}
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	// Property: Parse must reject (not panic on) arbitrary mutations of a
	// valid image.
	base := Build(arch.GTX460())
	f := func(pos uint16, val byte, truncate uint16) bool {
		img := append([]byte(nil), base...)
		img[int(pos)%len(img)] = val
		if int(truncate)%4 == 0 {
			img = img[:int(truncate)%len(img)]
		}
		_, err := Parse(img) // must not panic; error or nil both fine
		_ = err
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
