// Package governor implements the dynamic power/performance manager the
// paper motivates as the end goal of its unified models ("a strong basis
// for the dynamic runtime management of power and performance for
// GPU-accelerated systems", Section V): profile a kernel once at the
// default clocks, predict its power and execution time at every available
// frequency pair from the single unified model per GPU, and program the
// pair that optimizes a policy (minimum energy, EDP, …) under optional
// power-cap and slowdown constraints.
//
// This is exactly what per-pair models cannot do online: with one model
// per frequency pair, a governor would need counters *measured at each
// pair* before it could choose — defeating the purpose. The unified form
// extrapolates from one profile.
package governor

import (
	"errors"
	"fmt"

	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/gpu"
)

// Policy is what the governor optimizes.
type Policy struct {
	// Objective is minimized among feasible pairs (default MinEnergy).
	Objective characterize.Objective
	// PowerCapWatts is the wall-power ceiling; 0 disables the cap.
	PowerCapWatts float64
	// MaxSlowdownPct bounds the predicted slowdown relative to the
	// predicted (H-H) time, in percent; 0 disables the bound.
	MaxSlowdownPct float64
}

// Decision is the governor's choice for one workload.
type Decision struct {
	Pair           clock.Pair
	PredictedWatts float64
	PredictedTime  float64 // seconds per iteration
	// Feasible is false when no pair satisfied the constraints and the
	// governor fell back to the default pair.
	Feasible bool
}

// Outcome pairs a decision with its measured result.
type Outcome struct {
	Decision
	MeasuredWatts float64
	MeasuredTime  float64
	EnergyPerIter float64
}

// Governor drives one device with one pair of trained unified models.
type Governor struct {
	dev    *driver.Device
	power  *core.Model
	time   *core.Model
	policy Policy
}

// New assembles a governor. The models must have been trained for the
// device's board.
func New(dev *driver.Device, powerModel, timeModel *core.Model, policy Policy) (*Governor, error) {
	if dev == nil || powerModel == nil || timeModel == nil {
		return nil, errors.New("governor: nil device or model")
	}
	if powerModel.Kind != core.Power || timeModel.Kind != core.Time {
		return nil, errors.New("governor: models passed in the wrong order")
	}
	board := dev.Spec().Name
	if powerModel.Board != board || timeModel.Board != board {
		return nil, fmt.Errorf("governor: models trained for %q/%q, device is %q",
			powerModel.Board, timeModel.Board, board)
	}
	return &Governor{dev: dev, power: powerModel, time: timeModel, policy: policy}, nil
}

// Decide picks a frequency pair from per-iteration profile counters. It is
// pure prediction: no clocks are changed.
func (g *Governor) Decide(perIterCounters []float64) Decision {
	spec := g.dev.Spec()
	base := g.predict(perIterCounters, clock.DefaultPair())

	best := Decision{Pair: clock.DefaultPair(), PredictedWatts: base.watts, PredictedTime: base.time}
	bestCost := 0.0
	found := false
	for _, pair := range clock.ValidPairs(spec) {
		pred := g.predict(perIterCounters, pair)
		if pred.time <= 0 {
			continue // extrapolation artifact
		}
		if g.policy.PowerCapWatts > 0 && pred.watts > g.policy.PowerCapWatts {
			continue
		}
		if g.policy.MaxSlowdownPct > 0 && base.time > 0 {
			if slow := (pred.time/base.time - 1) * 100; slow > g.policy.MaxSlowdownPct {
				continue
			}
		}
		cost := g.policy.Objective.CostOf(pred.watts*pred.time, pred.time)
		if !found || cost < bestCost {
			found = true
			bestCost = cost
			best = Decision{Pair: pair, PredictedWatts: pred.watts, PredictedTime: pred.time, Feasible: true}
		}
	}
	return best
}

type prediction struct {
	time  float64
	watts float64
}

func (g *Governor) predict(perIterCounters []float64, pair clock.Pair) prediction {
	spec := g.dev.Spec()
	o := core.Observation{
		Pair:     pair,
		CoreGHz:  spec.CoreFreqGHz(pair.Core),
		MemGHz:   spec.MemFreqGHz(pair.Mem),
		Counters: perIterCounters,
	}
	t := g.time.Predict(&o)
	o.TimeS = t
	return prediction{time: t, watts: g.power.Predict(&o)}
}

// RunTuned executes one workload under governance: profile at the default
// pair, decide, program the chosen pair, run metered, and report predicted
// vs measured. The device is left at the chosen pair.
func (g *Governor) RunTuned(name string, kernels []*gpu.KernelDesc, hostGap float64) (*Outcome, error) {
	if err := g.dev.SetClocks(clock.DefaultPair()); err != nil {
		return nil, err
	}
	g.dev.EnableProfiler()
	prof, err := g.dev.RunMetered(name, kernels, hostGap, characterize.MinRunSeconds)
	g.dev.DisableProfiler()
	if err != nil {
		return nil, err
	}
	perIter := make([]float64, len(prof.Counters))
	for i, c := range prof.Counters {
		perIter[i] = c / float64(prof.Iterations)
	}

	d := g.Decide(perIter)
	if err := g.dev.SetClocks(d.Pair); err != nil {
		return nil, err
	}
	rr, err := g.dev.RunMetered(name, kernels, hostGap, characterize.MinRunSeconds)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Decision:      d,
		MeasuredWatts: rr.Measurement.AvgWatts,
		MeasuredTime:  rr.TimePerIteration(),
		EnergyPerIter: rr.EnergyPerIteration(),
	}, nil
}
