package governor

import (
	"testing"

	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

// trained builds a device + models pair for one board (cached dataset per
// test run would be overkill; collection is milliseconds).
func trained(t *testing.T, board string, policy Policy) (*Governor, *driver.Device) {
	t.Helper()
	ds, err := core.CollectAll(board, 42)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Train(ds, core.Power, core.MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := core.Train(ds, core.Time, core.MaxVariables)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := driver.OpenBoard(board)
	if err != nil {
		t.Fatal(err)
	}
	dev.Seed(7)
	g, err := New(dev, pm, tm, policy)
	if err != nil {
		t.Fatal(err)
	}
	return g, dev
}

func profileCounters(t *testing.T, dev *driver.Device, bench string) []float64 {
	t.Helper()
	b := workloads.ByName(bench)
	if err := dev.SetClocks(clock.DefaultPair()); err != nil {
		t.Fatal(err)
	}
	dev.EnableProfiler()
	prof, err := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
	dev.DisableProfiler()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(prof.Counters))
	for i, c := range prof.Counters {
		out[i] = c / float64(prof.Iterations)
	}
	return out
}

func TestNewValidatesInputs(t *testing.T) {
	ds, err := core.CollectAll("GTX 680", 42)
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := core.Train(ds, core.Power, 5)
	tm, _ := core.Train(ds, core.Time, 5)
	dev, _ := driver.OpenBoard("GTX 680")

	if _, err := New(nil, pm, tm, Policy{}); err == nil {
		t.Error("New accepted nil device")
	}
	if _, err := New(dev, tm, pm, Policy{}); err == nil {
		t.Error("New accepted swapped models")
	}
	other, _ := driver.OpenBoard("GTX 285")
	if _, err := New(other, pm, tm, Policy{}); err == nil {
		t.Error("New accepted models trained for another board")
	}
	if _, err := New(dev, pm, tm, Policy{}); err != nil {
		t.Errorf("New rejected valid inputs: %v", err)
	}
}

func TestDecideRespectsPowerCap(t *testing.T) {
	g, dev := trained(t, "GTX 680", Policy{Objective: characterize.MinEnergy, PowerCapWatts: 150})
	counters := profileCounters(t, dev, "sgemm")
	d := g.Decide(counters)
	if d.Feasible && d.PredictedWatts > 150 {
		t.Errorf("decision predicts %.1f W above the 150 W cap", d.PredictedWatts)
	}
}

func TestDecideInfeasibleFallsBackToDefault(t *testing.T) {
	// A 1 W cap is unsatisfiable; the governor must fall back to (H-H)
	// and say so.
	g, dev := trained(t, "GTX 680", Policy{PowerCapWatts: 1})
	d := g.Decide(profileCounters(t, dev, "sgemm"))
	if d.Feasible {
		t.Error("1 W cap reported feasible")
	}
	if d.Pair != clock.DefaultPair() {
		t.Errorf("fallback pair %s, want (H-H)", d.Pair)
	}
}

func TestDecideSlowdownBound(t *testing.T) {
	// With a tight slowdown bound the predicted time must stay near the
	// predicted default time.
	g, dev := trained(t, "GTX 680", Policy{MaxSlowdownPct: 5})
	counters := profileCounters(t, dev, "backprop")
	d := g.Decide(counters)
	base := g.predict(counters, clock.DefaultPair())
	if d.Feasible && base.time > 0 {
		if slow := (d.PredictedTime/base.time - 1) * 100; slow > 5+1e-9 {
			t.Errorf("predicted slowdown %.1f%% above the 5%% bound", slow)
		}
	}
}

func TestDecideTimeObjectivePrefersFastPairs(t *testing.T) {
	gE, devE := trained(t, "GTX 680", Policy{Objective: characterize.MinEnergy})
	cs := profileCounters(t, devE, "streamcluster")
	dEnergy := gE.Decide(cs)
	gT, _ := New(gE.dev, gE.power, gE.time, Policy{Objective: characterize.MinTime})
	dTime := gT.Decide(cs)
	if dTime.PredictedTime > dEnergy.PredictedTime+1e-12 {
		t.Errorf("time objective picked a slower pair (%.4g s) than energy objective (%.4g s)",
			dTime.PredictedTime, dEnergy.PredictedTime)
	}
}

func TestRunTunedSavesEnergyOnKepler(t *testing.T) {
	g, dev := trained(t, "GTX 680", Policy{Objective: characterize.MinEnergy})
	b := workloads.ByName("backprop")

	// Baseline at default clocks.
	if err := dev.SetClocks(clock.DefaultPair()); err != nil {
		t.Fatal(err)
	}
	base, err := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}

	out, err := g.RunTuned(b.Name, b.Kernels(1), b.HostGap(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Pair == clock.DefaultPair() {
		t.Error("governor kept the default pair on Kepler backprop")
	}
	if out.EnergyPerIter >= base.EnergyPerIteration() {
		t.Errorf("governed energy %.2f J not below default %.2f J",
			out.EnergyPerIter, base.EnergyPerIteration())
	}
	if dev.Clocks() != out.Pair {
		t.Error("device not left at the chosen pair")
	}
}

func TestDecideDeterministic(t *testing.T) {
	g, dev := trained(t, "GTX 460", Policy{})
	cs := profileCounters(t, dev, "lud")
	a, b := g.Decide(cs), g.Decide(cs)
	if a != b {
		t.Errorf("Decide not deterministic: %+v vs %+v", a, b)
	}
}
