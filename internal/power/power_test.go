package power

import (
	"testing"

	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// fullLoadKernel saturates the ALU pipelines with a realistic trickle of
// memory traffic — roughly what a power virus or dense kernel does.
func fullLoadKernel(spec *arch.Spec) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name:            "fullload",
		Blocks:          16 * spec.SMCount,
		ThreadsPerBlock: 256,
		RegsPerThread:   20,
		Phases: []gpu.PhaseDesc{{
			Name:             "burn",
			WarpInstsPerWarp: 50000,
			FracALU:          0.78,
			FracMem:          0.06,
			FracShared:       0.06,
			FracBranch:       0.04,
			TxnPerMemInst:    1.5,
			StoreFrac:        0.3,
			L1Hit:            0.3, L2Hit: 0.4,
			WorkingSetBytes: 64 << 10,
			MLP:             6,
			IssueEff:        0.95,
		}},
	}
}

func runFullLoad(t *testing.T, spec *arch.Spec, p clock.Pair) (gpu.Events, float64, *clock.State) {
	t.Helper()
	clk := clock.NewState(spec)
	if err := clk.SetPair(p); err != nil {
		t.Fatal(err)
	}
	res, err := gpu.New(spec, clk).RunKernel(fullLoadKernel(spec))
	if err != nil {
		t.Fatal(err)
	}
	var ev gpu.Events
	for _, ph := range res.Phases {
		ev.Add(ph.Events)
	}
	return ev, res.Time, clk
}

func TestFullLoadPowerNearTDP(t *testing.T) {
	// Calibration guard: at (H-H) a saturating kernel should draw GPU
	// power in the neighbourhood of the board's TDP — between 50% and
	// 115% (TDP is an upper bound real workloads rarely pin).
	for _, spec := range arch.AllBoards() {
		ev, dur, clk := runFullLoad(t, spec, clock.DefaultPair())
		m := NewModel(spec)
		w := m.GPUWatts(clk, ev, dur)
		if w < 0.5*spec.TDPWatts || w > 1.15*spec.TDPWatts {
			t.Errorf("%s: full-load GPU power %.0f W vs TDP %.0f W (want 50%%–115%%)", spec.Name, w, spec.TDPWatts)
		}
	}
}

func TestPowerDropsWithLowerPairs(t *testing.T) {
	for _, spec := range arch.AllBoards() {
		m := NewModel(spec)
		evH, durH, clkH := runFullLoad(t, spec, clock.DefaultPair())
		baseline := m.GPUWatts(clkH, evH, durH)
		for _, p := range clock.ValidPairs(spec) {
			if p == clock.DefaultPair() {
				continue
			}
			ev, dur, clk := runFullLoad(t, spec, p)
			if w := m.GPUWatts(clk, ev, dur); w >= baseline {
				t.Errorf("%s %s: GPU power %.0f W not below (H-H) %.0f W", spec.Name, p, w, baseline)
			}
		}
	}
}

func TestKeplerCoreMidEnergyCutIsDeepest(t *testing.T) {
	// The generation story (Section III): for a compute-bound kernel,
	// dropping the core clock one level cuts GPU *energy* substantially
	// on Kepler (voltage headroom) but not on Tesla, where the stretched
	// runtime eats the power saving.
	energyRatio := func(spec *arch.Spec) float64 {
		m := NewModel(spec)
		evH, durH, clkH := runFullLoad(t, spec, clock.DefaultPair())
		evM, durM, clkM := runFullLoad(t, spec, clock.Pair{Core: arch.FreqMid, Mem: arch.FreqHigh})
		return m.GPUWatts(clkM, evM, durM) * durM / (m.GPUWatts(clkH, evH, durH) * durH)
	}
	tesla, kepler := energyRatio(arch.GTX285()), energyRatio(arch.GTX680())
	if kepler >= tesla {
		t.Errorf("Kepler core-M energy ratio %.2f not below Tesla's %.2f", kepler, tesla)
	}
	if kepler > 0.75 {
		t.Errorf("Kepler core-M energy ratio %.2f too close to 1 to reproduce the paper's headline", kepler)
	}
	if tesla < 0.92 {
		t.Errorf("Tesla core-M energy ratio %.2f too deep; Tesla had almost no headroom", tesla)
	}
}

func TestSystemWattsComposition(t *testing.T) {
	spec := arch.GTX460()
	ev, dur, clk := runFullLoad(t, spec, clock.DefaultPair())
	m := NewModel(spec)
	gpuW := m.GPUWatts(clk, ev, dur)
	sys := m.SystemWatts(clk, ev, dur)
	dc := m.SystemIdleWatts + m.CPUActiveWatts + gpuW
	if want := WallFromDC(dc); sys != want {
		t.Errorf("SystemWatts = %g, want %g", sys, want)
	}
	if sys <= dc {
		t.Error("wall power should exceed DC power (PSU losses)")
	}
	idle := m.SystemIdleWallWatts(clk)
	if idle >= sys {
		t.Error("idle system power not below loaded system power")
	}
	if idle < m.SystemIdleWatts {
		t.Error("idle system power below host-only baseline")
	}
}

func TestPSUEfficiencyCurve(t *testing.T) {
	if PSUEfficiency(220) != 0.87 {
		t.Errorf("peak efficiency %g, want 0.87 at 220 W", PSUEfficiency(220))
	}
	if PSUEfficiency(60) >= PSUEfficiency(220) || PSUEfficiency(600) >= PSUEfficiency(220) {
		t.Error("efficiency should fall off away from the peak")
	}
	if PSUEfficiency(2000) < 0.81 {
		t.Error("efficiency floor violated")
	}
	if WallFromDC(0) != 0 || WallFromDC(-5) != 0 {
		t.Error("non-positive DC should give zero wall power")
	}
	if WallFromDC(200) <= 200 {
		t.Error("wall power must exceed DC power")
	}
}

func TestZeroDurationHasNoDynamicPower(t *testing.T) {
	spec := arch.GTX680()
	clk := clock.NewState(spec)
	m := NewModel(spec)
	if got := m.GPUDynamicWatts(clk, gpu.Events{ALU: 1e9}, 0); got != 0 {
		t.Errorf("dynamic power at zero duration = %g, want 0", got)
	}
	if got := m.GPUStaticWatts(clk); got <= 0 {
		t.Errorf("static power = %g, want > 0", got)
	}
}

func TestMemoryTrafficCostsMemoryPower(t *testing.T) {
	spec := arch.GTX480()
	clk := clock.NewState(spec)
	m := NewModel(spec)
	quiet := gpu.Events{Issue: 1e9, ALU: 1e9}
	noisy := quiet
	noisy.DRAM = 1e9
	noisy.L2 = 2e9
	if m.GPUDynamicWatts(clk, noisy, 1) <= m.GPUDynamicWatts(clk, quiet, 1) {
		t.Error("DRAM traffic added no power")
	}
}

func TestScopeWattsSumToGPUWatts(t *testing.T) {
	// The per-scope split must conserve total GPU power: gpu + memory ==
	// module == GPUWatts, for every board at every valid pair.
	for _, spec := range arch.AllBoards() {
		m := NewModel(spec)
		for _, p := range clock.ValidPairs(spec) {
			ev, dur, clk := runFullLoad(t, spec, p)
			bd := m.ScopeWatts(clk, ev, dur)
			total := m.GPUWatts(clk, ev, dur)
			if diff := bd.Module() - total; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s %s: scope sum %.9f != GPUWatts %.9f", spec.Name, p, bd.Module(), total)
			}
			if bd.GPU <= 0 || bd.Memory <= 0 {
				t.Errorf("%s %s: non-positive scope power %+v", spec.Name, p, bd)
			}
		}
	}
}

func TestIdleScopeWattsSumToStatic(t *testing.T) {
	spec := arch.GTX480()
	m := NewModel(spec)
	clk := clock.NewState(spec)
	idle := m.IdleScopeWatts(clk)
	if diff := idle.Module() - m.GPUStaticWatts(clk); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("idle scope sum %.12f != static %.12f", idle.Module(), m.GPUStaticWatts(clk))
	}
	// Zero duration degrades to the idle split.
	bd := m.ScopeWatts(clk, gpu.Events{}, 0)
	if bd != idle {
		t.Fatalf("zero-duration ScopeWatts %+v != idle %+v", bd, idle)
	}
}

func TestBreakdownScopeSelectors(t *testing.T) {
	b := Breakdown{GPU: 100, Memory: 40}
	if b.Scope(ScopeGPU) != 100 || b.Scope(ScopeMemory) != 40 || b.Scope(ScopeModule) != 140 {
		t.Fatalf("selector mismatch: %+v", b)
	}
	if got := b.Add(Breakdown{GPU: 1, Memory: 2}); got != (Breakdown{GPU: 101, Memory: 42}) {
		t.Fatalf("Add: %+v", got)
	}
	if got := b.Scale(0.5); got != (Breakdown{GPU: 50, Memory: 20}) {
		t.Fatalf("Scale: %+v", got)
	}
	if n := len(Scopes()); n != 3 {
		t.Fatalf("Scopes() returned %d entries", n)
	}
}

func TestMemoryBoundKernelShiftsScopeShare(t *testing.T) {
	// A memory-heavy tally must put a larger share of dynamic power in the
	// memory scope than a compute-heavy one — the split tracks the event
	// mix, not a fixed ratio.
	spec := arch.GTX480()
	m := NewModel(spec)
	clk := clock.NewState(spec)
	compute := gpu.Events{Issue: 1e9, ALU: 8e8}
	memory := gpu.Events{Issue: 1e9, L2: 5e8, DRAM: 5e8}
	shareOf := func(ev gpu.Events) float64 {
		bd := m.ScopeWatts(clk, ev, 0.01)
		return bd.Memory / bd.Module()
	}
	if shareOf(memory) <= shareOf(compute) {
		t.Fatalf("memory-bound share %.3f not above compute-bound %.3f",
			shareOf(memory), shareOf(compute))
	}
}
