// Package power converts the timing simulator's event tallies into watts —
// the ground truth the simulated wall-power meter measures.
//
// Dynamic power is event-driven: every hardware event (a warp instruction
// issue, an ALU operation, a cache transaction, a DRAM access) costs a
// per-event energy taken from the board spec, scaled by (V/Vnom)² of its
// clock domain (capacitive switching energy). Frequency enters through the
// event *rate*: running the same kernel at a higher clock packs the same
// events into less time, raising power — exactly the structure the paper's
// Eq. (1) assumes when it multiplies counter rates by the domain frequency.
//
// Static power is leakage (strongly voltage dependent, ∝ (V/Vnom)³) plus
// clock-tree/background dynamic power (∝ f·V²).
//
// The paper measures whole-system power at the outlet (Section II-C), so
// the model also carries the host machine: a constant idle baseline and a
// CPU-active adder while a kernel is in flight.
package power

import (
	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// Default host-machine constants: an Intel Core i5-2400 desktop like the
// paper's platform idles in the 40–50 W range at the wall, and the busy
// host side of a CUDA run (driver spin-wait, DMA) adds a few tens of watts.
const (
	DefaultSystemIdleWatts = 40.0
	DefaultCPUActiveWatts  = 20.0
)

// Model converts event tallies to watts for one board in one host machine.
type Model struct {
	Spec *arch.Spec
	// SystemIdleWatts is the wall power of the host with the GPU's own
	// contribution excluded (CPU idle, board, PSU losses).
	SystemIdleWatts float64
	// CPUActiveWatts is added while a kernel is running.
	CPUActiveWatts float64
}

// NewModel returns a power model for the board with the default host.
func NewModel(spec *arch.Spec) *Model {
	return &Model{
		Spec:            spec,
		SystemIdleWatts: DefaultSystemIdleWatts,
		CPUActiveWatts:  DefaultCPUActiveWatts,
	}
}

// GPUDynamicWatts returns the dynamic (event-driven) GPU power of an
// interval with the given event tally and duration in seconds.
func (m *Model) GPUDynamicWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	s := m.Spec
	coreJ := (ev.Issue*s.EnergyPerWarpInst +
		ev.ALU*s.EnergyPerALU +
		ev.SFU*s.EnergyPerSFU +
		ev.DP*s.EnergyPerDP +
		ev.LSU*s.EnergyPerLSU +
		ev.Shared*s.EnergyPerSharedAcc +
		ev.L1*s.EnergyPerL1Access) * 1e-9 * clk.CoreEnergyScale()
	memJ := (ev.L2*s.EnergyPerL2Access +
		ev.DRAM*s.EnergyPerDRAMTxn) * 1e-9 * clk.MemEnergyScale()
	return (coreJ + memJ) / duration
}

// GPUStaticWatts returns the DVFS-state-dependent static GPU power:
// leakage plus clock-tree and DRAM background power.
func (m *Model) GPUStaticWatts(clk *clock.State) float64 {
	s := m.Spec
	return s.CoreLeakWatts*clk.CoreLeakScale() +
		s.MemLeakWatts*clk.MemLeakScale() +
		s.CoreIdleWatts*clk.CoreIdleScale() +
		s.MemIdleWatts*clk.MemIdleScale()
}

// GPUWatts returns total GPU power over an interval.
func (m *Model) GPUWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	return m.GPUDynamicWatts(clk, ev, duration) + m.GPUStaticWatts(clk)
}

// PSUEfficiency returns the power supply's conversion efficiency at a DC
// load. Like any real PSU, efficiency peaks near half load and falls off
// toward both ends; the WT1600 measures at the outlet, so this nonlinearity
// is baked into every wall reading — and into the paper's regression
// targets, where a linear model cannot represent it.
func PSUEfficiency(dcWatts float64) float64 {
	// Peak 0.87 at 220 W DC, parabolic roll-off clamped to [0.81, 0.87].
	eta := 0.87 - 0.22e-6*(dcWatts-220)*(dcWatts-220)
	if eta < 0.81 {
		eta = 0.81
	}
	return eta
}

// WallFromDC converts a DC system load to wall power through the PSU curve.
func WallFromDC(dcWatts float64) float64 {
	if dcWatts <= 0 {
		return 0
	}
	return dcWatts / PSUEfficiency(dcWatts)
}

// SystemWatts returns whole-system wall power while a kernel interval with
// the given tally is executing — what the paper's WT1600 sees at the
// outlet, PSU losses included.
func (m *Model) SystemWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	dc := m.SystemIdleWatts + m.CPUActiveWatts + m.GPUWatts(clk, ev, duration)
	return WallFromDC(dc)
}

// SystemIdleWallWatts returns wall power while the machine is idle at the
// given DVFS state (between kernels).
func (m *Model) SystemIdleWallWatts(clk *clock.State) float64 {
	return WallFromDC(m.SystemIdleWatts + m.GPUStaticWatts(clk))
}
