// Package power converts the timing simulator's event tallies into watts —
// the ground truth the simulated wall-power meter measures.
//
// Dynamic power is event-driven: every hardware event (a warp instruction
// issue, an ALU operation, a cache transaction, a DRAM access) costs a
// per-event energy taken from the board spec, scaled by (V/Vnom)² of its
// clock domain (capacitive switching energy). Frequency enters through the
// event *rate*: running the same kernel at a higher clock packs the same
// events into less time, raising power — exactly the structure the paper's
// Eq. (1) assumes when it multiplies counter rates by the domain frequency.
//
// Static power is leakage (strongly voltage dependent, ∝ (V/Vnom)³) plus
// clock-tree/background dynamic power (∝ f·V²).
//
// The paper measures whole-system power at the outlet (Section II-C), so
// the model also carries the host machine: a constant idle baseline and a
// CPU-active adder while a kernel is in flight.
package power

import (
	"gpuperf/internal/arch"
	"gpuperf/internal/clock"
	"gpuperf/internal/gpu"
)

// Default host-machine constants: an Intel Core i5-2400 desktop like the
// paper's platform idles in the 40–50 W range at the wall, and the busy
// host side of a CUDA run (driver spin-wait, DMA) adds a few tens of watts.
const (
	DefaultSystemIdleWatts = 40.0
	DefaultCPUActiveWatts  = 20.0
)

// Model converts event tallies to watts for one board in one host machine.
type Model struct {
	Spec *arch.Spec
	// SystemIdleWatts is the wall power of the host with the GPU's own
	// contribution excluded (CPU idle, board, PSU losses).
	SystemIdleWatts float64
	// CPUActiveWatts is added while a kernel is running.
	CPUActiveWatts float64
}

// NewModel returns a power model for the board with the default host.
func NewModel(spec *arch.Spec) *Model {
	return &Model{
		Spec:            spec,
		SystemIdleWatts: DefaultSystemIdleWatts,
		CPUActiveWatts:  DefaultCPUActiveWatts,
	}
}

// Scope names one of the NVML-style power domains a fleet exporter
// reports: the GPU core domain, the memory domain, or the whole module
// (their sum) — the label values of the live gpuperf_power_watts family.
type Scope string

// The three reporting domains, mirroring NVML's power scopes
// (NVML_POWER_SCOPE_GPU / _MEMORY / _MODULE).
const (
	ScopeGPU    Scope = "gpu"
	ScopeMemory Scope = "memory"
	ScopeModule Scope = "module"
)

// Scopes returns the reporting domains in exposition order.
func Scopes() []Scope { return []Scope{ScopeGPU, ScopeMemory, ScopeModule} }

// Breakdown is per-domain GPU power (or energy, when integrated): the
// core domain (SMs, caches up to L1, shared memory) and the memory
// domain (L2 and DRAM). The module scope is their sum.
type Breakdown struct {
	GPU    float64
	Memory float64
}

// Module returns the whole-module value — the sum of both domains.
func (b Breakdown) Module() float64 { return b.GPU + b.Memory }

// Scope selects one domain by its exposition name.
func (b Breakdown) Scope(s Scope) float64 {
	switch s {
	case ScopeGPU:
		return b.GPU
	case ScopeMemory:
		return b.Memory
	default:
		return b.Module()
	}
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{GPU: b.GPU + o.GPU, Memory: b.Memory + o.Memory}
}

// Scale returns the breakdown scaled by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{GPU: b.GPU * f, Memory: b.Memory * f}
}

// dynamicJoules splits an interval's dynamic switching energy by clock
// domain: core-side events (issue, ALU/SFU/DP, LSU, shared, L1) against
// memory-side events (L2, DRAM).
func (m *Model) dynamicJoules(clk *clock.State, ev gpu.Events) (coreJ, memJ float64) {
	s := m.Spec
	coreJ = (ev.Issue*s.EnergyPerWarpInst +
		ev.ALU*s.EnergyPerALU +
		ev.SFU*s.EnergyPerSFU +
		ev.DP*s.EnergyPerDP +
		ev.LSU*s.EnergyPerLSU +
		ev.Shared*s.EnergyPerSharedAcc +
		ev.L1*s.EnergyPerL1Access) * 1e-9 * clk.CoreEnergyScale()
	memJ = (ev.L2*s.EnergyPerL2Access +
		ev.DRAM*s.EnergyPerDRAMTxn) * 1e-9 * clk.MemEnergyScale()
	return coreJ, memJ
}

// GPUDynamicWatts returns the dynamic (event-driven) GPU power of an
// interval with the given event tally and duration in seconds.
func (m *Model) GPUDynamicWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	coreJ, memJ := m.dynamicJoules(clk, ev)
	return (coreJ + memJ) / duration
}

// GPUStaticWatts returns the DVFS-state-dependent static GPU power:
// leakage plus clock-tree and DRAM background power.
func (m *Model) GPUStaticWatts(clk *clock.State) float64 {
	s := m.Spec
	return s.CoreLeakWatts*clk.CoreLeakScale() +
		s.MemLeakWatts*clk.MemLeakScale() +
		s.CoreIdleWatts*clk.CoreIdleScale() +
		s.MemIdleWatts*clk.MemIdleScale()
}

// GPUWatts returns total GPU power over an interval.
func (m *Model) GPUWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	return m.GPUDynamicWatts(clk, ev, duration) + m.GPUStaticWatts(clk)
}

// IdleScopeWatts returns the static (leakage + background) power split by
// domain at the given DVFS state — what each scope reports between
// kernels.
func (m *Model) IdleScopeWatts(clk *clock.State) Breakdown {
	s := m.Spec
	return Breakdown{
		GPU:    s.CoreLeakWatts*clk.CoreLeakScale() + s.CoreIdleWatts*clk.CoreIdleScale(),
		Memory: s.MemLeakWatts*clk.MemLeakScale() + s.MemIdleWatts*clk.MemIdleScale(),
	}
}

// ScopeWatts returns total GPU power over an interval split by domain:
// dynamic switching power assigned to its clock domain plus that domain's
// static power. Scope sums agree with GPUWatts (up to floating-point
// association), so the live per-scope exposition and the artifact-path
// wall model describe the same hardware.
func (m *Model) ScopeWatts(clk *clock.State, ev gpu.Events, duration float64) Breakdown {
	idle := m.IdleScopeWatts(clk)
	if duration <= 0 {
		return idle
	}
	coreJ, memJ := m.dynamicJoules(clk, ev)
	return Breakdown{
		GPU:    coreJ/duration + idle.GPU,
		Memory: memJ/duration + idle.Memory,
	}
}

// PSUEfficiency returns the power supply's conversion efficiency at a DC
// load. Like any real PSU, efficiency peaks near half load and falls off
// toward both ends; the WT1600 measures at the outlet, so this nonlinearity
// is baked into every wall reading — and into the paper's regression
// targets, where a linear model cannot represent it.
func PSUEfficiency(dcWatts float64) float64 {
	// Peak 0.87 at 220 W DC, parabolic roll-off clamped to [0.81, 0.87].
	eta := 0.87 - 0.22e-6*(dcWatts-220)*(dcWatts-220)
	if eta < 0.81 {
		eta = 0.81
	}
	return eta
}

// WallFromDC converts a DC system load to wall power through the PSU curve.
func WallFromDC(dcWatts float64) float64 {
	if dcWatts <= 0 {
		return 0
	}
	return dcWatts / PSUEfficiency(dcWatts)
}

// SystemWatts returns whole-system wall power while a kernel interval with
// the given tally is executing — what the paper's WT1600 sees at the
// outlet, PSU losses included.
func (m *Model) SystemWatts(clk *clock.State, ev gpu.Events, duration float64) float64 {
	dc := m.SystemIdleWatts + m.CPUActiveWatts + m.GPUWatts(clk, ev, duration)
	return WallFromDC(dc)
}

// SystemIdleWallWatts returns wall power while the machine is idle at the
// given DVFS state (between kernels).
func (m *Model) SystemIdleWallWatts(clk *clock.State) float64 {
	return WallFromDC(m.SystemIdleWatts + m.GPUStaticWatts(clk))
}
