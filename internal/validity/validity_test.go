package validity

import (
	"bytes"
	"strings"
	"testing"
)

func TestClassifyRun(t *testing.T) {
	cases := []struct {
		name   string
		facts  RunFacts
		class  Class
		reason string // required substring
	}{
		{"clean", RunFacts{Confidence: 1}, Valid, ""},
		{"quarantined hang", RunFacts{Quarantined: true, FailPoint: "launch.hang", Retries: 4},
			InfraFlake, "retry budget exhausted at launch.hang after 5 attempts"},
		{"quarantined boot", RunFacts{Quarantined: true, FailPoint: "boot.fail", Retries: 1},
			InfraFlake, "boot.fail after 2 attempts"},
		{"quarantined unattributed", RunFacts{Quarantined: true},
			InfraFlake, "unknown fault"},
		{"low confidence", RunFacts{Confidence: 0.5, Interpolated: 120},
			InfraFlake, "meter confidence 0.50 below 0.90 floor (120 samples interpolated)"},
		{"accepted degraded", RunFacts{Confidence: 0.97, Interpolated: 3},
			Valid, "accepted with 3 interpolated samples"},
	}
	for _, tc := range cases {
		v := ClassifyRun(tc.facts)
		if v.Class != tc.class {
			t.Errorf("%s: class %s, want %s", tc.name, v.Class, tc.class)
		}
		if tc.reason != "" && !strings.Contains(v.Reason, tc.reason) {
			t.Errorf("%s: reason %q missing %q", tc.name, v.Reason, tc.reason)
		}
		if tc.reason == "" && v.Reason != "" {
			t.Errorf("%s: unexpected reason %q", tc.name, v.Reason)
		}
	}
}

func TestCohortHashStableAndSensitive(t *testing.T) {
	base := Cohort{Seed: 42, Boards: []string{"GTX 480", "GTX 680"}, Profile: "", CodeVersion: "test"}
	if base.Hash() != base.Hash() {
		t.Fatal("cohort hash is not stable")
	}
	if !base.Equal(base) {
		t.Fatal("cohort not equal to itself")
	}
	variants := []Cohort{
		{Seed: 43, Boards: base.Boards, Profile: base.Profile, CodeVersion: base.CodeVersion},
		{Seed: 42, Boards: []string{"GTX 480"}, Profile: base.Profile, CodeVersion: base.CodeVersion},
		{Seed: 42, Boards: base.Boards, Profile: "launch.hang:0.02", CodeVersion: base.CodeVersion},
		{Seed: 42, Boards: base.Boards, Profile: base.Profile, CodeVersion: "other"},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d shares the base hash", i)
		}
		if v.Equal(base) {
			t.Errorf("variant %d compares equal to base", i)
		}
	}
}

func cleanRun(rep int, time, watts float64) Run {
	return Run{Rep: rep, Verdict: Verdict{Class: Valid}, Time: time, Watts: watts, Energy: time * watts, Confidence: 1}
}

func TestTriageRepetitionGate(t *testing.T) {
	cohort := Cohort{Seed: 42, Boards: []string{"B"}, CodeVersion: "test"}
	tr := NewTriage(cohort, 3, 2, 0.05)

	// Cell A: three agreeing repetitions — VALID.
	for rep := 0; rep < 3; rep++ {
		if err := tr.Observe("table4", "B", "a", "(H-H)", cleanRun(rep, 1.0+0.001*float64(rep), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Cell B: one flake, two valid — still VALID (floor is 2), reason notes the flake.
	if err := tr.Observe("table4", "B", "b", "(H-H)",
		Run{Rep: 0, Verdict: Verdict{Class: InfraFlake, Reason: "retry budget exhausted at launch.hang after 5 attempts"}}); err != nil {
		t.Fatal(err)
	}
	for rep := 1; rep < 3; rep++ {
		if err := tr.Observe("table4", "B", "b", "(H-H)", cleanRun(rep, 2.0, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Cell C: two flakes — below the floor, INFRA_FLAKE blaming the fault.
	for rep := 0; rep < 2; rep++ {
		if err := tr.Observe("table4", "B", "c", "(H-H)",
			Run{Rep: rep, Verdict: Verdict{Class: InfraFlake, Reason: "retry budget exhausted at boot.fail after 3 attempts"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Observe("table4", "B", "c", "(H-H)", cleanRun(2, 2.0, 50)); err != nil {
		t.Fatal(err)
	}
	// Cell D: valid repetitions that disagree — MODEL_FAILURE.
	if err := tr.Observe("table4", "B", "d", "(H-H)", cleanRun(0, 1.0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe("table4", "B", "d", "(H-H)", cleanRun(1, 1.5, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe("table4", "B", "d", "(H-H)", cleanRun(2, 1.0, 100)); err != nil {
		t.Fatal(err)
	}

	want := map[string]Class{"a": Valid, "b": Valid, "c": InfraFlake, "d": ModelFailure}
	for bench, class := range want {
		v, ok := tr.CellVerdict("table4", "B", bench, "(H-H)")
		if !ok {
			t.Fatalf("%s: no verdict", bench)
		}
		if v.Class != class {
			t.Errorf("%s: class %s (%s), want %s", bench, v.Class, v.Reason, class)
		}
	}
	if v, _ := tr.CellVerdict("table4", "B", "b", "(H-H)"); !strings.Contains(v.Reason, "infra flakes tolerated") {
		t.Errorf("cell b reason %q does not note the tolerated flake", v.Reason)
	}
	if v, _ := tr.CellVerdict("table4", "B", "c", "(H-H)"); !strings.Contains(v.Reason, "boot.fail") {
		t.Errorf("cell c reason %q does not blame boot.fail", v.Reason)
	}
	if v, _ := tr.CellVerdict("table4", "B", "d", "(H-H)"); !strings.Contains(v.Reason, "time spread") {
		t.Errorf("cell d reason %q does not name the disagreeing metric", v.Reason)
	}

	// Bench-level aggregation: any non-valid pair poisons the group.
	for rep := 0; rep < 2; rep++ {
		if err := tr.Observe("table4", "B", "e", "(H-H)", cleanRun(rep, 1, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Observe("table4", "B", "e", "(L-L)",
		Run{Rep: 0, Verdict: Verdict{Class: InfraFlake, Reason: "retry budget exhausted at launch.hang after 2 attempts"}}); err != nil {
		t.Fatal(err)
	}
	bv, ok := tr.BenchVerdict("table4", "B", "e")
	if !ok || bv.Class != InfraFlake || !strings.Contains(bv.Reason, "(L-L)") {
		t.Errorf("bench verdict = %+v (ok=%v), want INFRA_FLAKE naming (L-L)", bv, ok)
	}

	// Duplicate observation is an error, unknown class too.
	if err := tr.Observe("table4", "B", "a", "(H-H)", cleanRun(0, 1, 1)); err == nil {
		t.Error("duplicate (cell, rep) observation accepted")
	}
	if err := tr.Observe("table4", "B", "z", "(H-H)", Run{Rep: 0}); err == nil {
		t.Error("unclassified run accepted")
	}
}

func TestReportRoundTripAndValidation(t *testing.T) {
	cohort := Cohort{Seed: 7, Boards: []string{"GTX 480"}, Profile: "launch.hang:1", CodeVersion: "test"}
	tr := NewTriage(cohort, 1, 1, 0)
	if err := tr.Observe("table4", "GTX 480", "backprop", "(H-H)", cleanRun(0, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe("table4", "GTX 480", "backprop", "(L-L)",
		Run{Rep: 0, Verdict: Verdict{Class: InfraFlake, Reason: "retry budget exhausted at launch.hang after 6 attempts"}}); err != nil {
		t.Fatal(err)
	}
	rep := tr.Finalize()
	if rep.Counts[Valid] != 1 || rep.Counts[InfraFlake] != 1 {
		t.Fatalf("counts %+v, want 1 VALID + 1 INFRA_FLAKE", rep.Counts)
	}
	if rep.Publishable() {
		t.Error("report with an INFRA_FLAKE cell claims publishability")
	}
	tbl := rep.Tables["table4"]
	if tbl.Cells != 2 || tbl.Publishable != 1 || len(tbl.Unstable) != 1 {
		t.Errorf("table provenance %+v", tbl)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	buf.Reset()
	if err := tr.Finalize().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Error("finalizing twice produced different bytes")
	}

	back, err := ReadReport([]byte(first))
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if back.CohortHash != cohort.Hash() {
		t.Errorf("round-tripped cohort hash %s, want %s", back.CohortHash, cohort.Hash())
	}

	// Structural validation catches tampering.
	tampered := strings.Replace(first, `"VALID": 1`, `"VALID": 2`, 1)
	if tampered == first {
		t.Fatal("tamper target not found in report JSON")
	}
	if _, err := ReadReport([]byte(tampered)); err == nil {
		t.Error("count-tampered report validated")
	}
}

func TestSpread(t *testing.T) {
	cases := []struct {
		values []float64
		want   float64
	}{
		{nil, 0},
		{[]float64{1}, 0},
		{[]float64{1, 1, 1}, 0},
		{[]float64{0.95, 1.0, 1.05}, 0.1},
		{[]float64{2, 1}, 2.0 / 3.0},
	}
	for i, tc := range cases {
		got := spread(tc.values)
		if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("case %d: spread=%v, want %v", i, got, tc.want)
		}
	}
}
