package validity

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultTolerance is the cross-repetition agreement ceiling: the
// relative spread ((max−min)/median) each measured scalar of a cell may
// show across its valid repetitions before the cell is a MODEL_FAILURE.
const DefaultTolerance = 0.05

// Run is one repetition's measurement of one cell, as the triage engine
// sees it: the run verdict the resilient sweep already attached plus the
// scalars the agreement check compares.
type Run struct {
	Rep     int     `json:"rep"`
	Verdict Verdict `json:"verdict"`
	// The measured scalars (zero for quarantined runs).
	Time   float64 `json:"time,omitempty"`
	Watts  float64 `json:"watts,omitempty"`
	Energy float64 `json:"energy,omitempty"`
	// Retries and Confidence make the report traceable without the
	// journal at hand.
	Retries    int     `json:"retries,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// cellKey addresses one measured cell within one table's provenance.
type cellKey struct {
	Table, Board, Bench, Pair string
}

// Triage accumulates runs across repetitions and tables and judges
// them. Safe for concurrent Observe calls; the judging methods are pure
// functions of the accumulated state.
type Triage struct {
	cohort      Cohort
	repetitions int
	minValid    int
	tolerance   float64

	mu   sync.Mutex
	runs map[cellKey][]Run
}

// NewTriage builds a triage engine for one cohort. repetitions is the
// campaign's planned repetition count (≥1); minValid ≤ repetitions is
// the publishability floor (0 means every repetition must be valid);
// tolerance ≤ 0 selects DefaultTolerance.
func NewTriage(cohort Cohort, repetitions, minValid int, tolerance float64) *Triage {
	if repetitions < 1 {
		repetitions = 1
	}
	if minValid <= 0 || minValid > repetitions {
		minValid = repetitions
	}
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	return &Triage{
		cohort:      cohort,
		repetitions: repetitions,
		minValid:    minValid,
		tolerance:   tolerance,
		runs:        map[cellKey][]Run{},
	}
}

// Cohort returns the triage engine's campaign identity.
func (t *Triage) Cohort() Cohort { return t.cohort }

// MinValid returns the publishability floor in valid repetitions.
func (t *Triage) MinValid() int { return t.minValid }

// Observe records one repetition's run of one cell. table names the
// provenance group ("table4", "fig1-3", "modeling"); duplicate
// (table, board, bench, pair, rep) observations are rejected — feeding
// the same sweep twice would double-count repetitions.
func (t *Triage) Observe(table, board, bench, pair string, run Run) error {
	if !KnownClass(run.Verdict.Class) {
		return fmt.Errorf("validity: unclassified run for %s/%s/%s@%s rep %d",
			table, board, bench, pair, run.Rep)
	}
	key := cellKey{Table: table, Board: board, Bench: bench, Pair: pair}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.runs[key] {
		if r.Rep == run.Rep {
			return fmt.Errorf("validity: duplicate observation for %s/%s/%s@%s rep %d",
				table, board, bench, pair, run.Rep)
		}
	}
	t.runs[key] = append(t.runs[key], run)
	return nil
}

// spread is the deterministic agreement metric: (max−min)/|median| over
// the values, 0 when fewer than two values or the median is 0.
func spread(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if median == 0 {
		return 0
	}
	span := sorted[len(sorted)-1] - sorted[0]
	if span < 0 {
		span = -span
	}
	if median < 0 {
		median = -median
	}
	return span / median
}

// judge computes one cell's verdict from its accumulated runs:
//
//   - fewer than MinValid valid runs → INFRA_FLAKE, blaming the
//     dominant flake reason (or under-repetition when nothing flaked);
//   - ≥2 valid runs whose time/power/energy spread exceeds the
//     tolerance → MODEL_FAILURE naming the offending metric;
//   - otherwise → VALID, noting surviving flakes when some repetitions
//     were lost but the floor still held.
//
// The floor is capped at the cell's observed run count: tables measured
// once per campaign (the modeling set) are judged on the one run they
// could show, not held to the sweep tables' repetition plan.
func (t *Triage) judge(runs []Run) (Verdict, int) {
	sorted := append([]Run(nil), runs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Rep < sorted[b].Rep })

	var valid []Run
	var firstFlake *Run
	flakes := 0
	for i := range sorted {
		switch sorted[i].Verdict.Class {
		case Valid:
			valid = append(valid, sorted[i])
		default:
			flakes++
			if firstFlake == nil {
				firstFlake = &sorted[i]
			}
		}
	}
	floor := t.minValid
	if len(sorted) < floor {
		floor = len(sorted)
	}
	if len(valid) < floor {
		if firstFlake != nil {
			reason := firstFlake.Verdict.Reason
			if reason == "" {
				reason = string(firstFlake.Verdict.Class)
			}
			return Verdict{Class: InfraFlake,
				Reason: fmt.Sprintf("%d/%d repetitions valid (min %d): %s",
					len(valid), len(sorted), t.minValid, reason)}, len(valid)
		}
		return Verdict{Class: InfraFlake,
			Reason: fmt.Sprintf("only %d/%d repetitions observed (min %d)",
				len(valid), len(sorted), t.minValid)}, len(valid)
	}
	for _, m := range [...]struct {
		name string
		get  func(Run) float64
	}{
		{"time", func(r Run) float64 { return r.Time }},
		{"power", func(r Run) float64 { return r.Watts }},
		{"energy", func(r Run) float64 { return r.Energy }},
	} {
		values := make([]float64, len(valid))
		for i, r := range valid {
			values[i] = m.get(r)
		}
		if s := spread(values); s > t.tolerance {
			return Verdict{Class: ModelFailure,
				Reason: fmt.Sprintf("cross-repetition disagreement: %s spread %.1f%% exceeds %.1f%% over %d valid repetitions",
					m.name, s*100, t.tolerance*100, len(valid))}, len(valid)
		}
	}
	if flakes > 0 {
		return Verdict{Class: Valid,
			Reason: fmt.Sprintf("%d/%d repetitions valid (%d infra flakes tolerated)",
				len(valid), len(sorted), flakes)}, len(valid)
	}
	return Verdict{Class: Valid}, len(valid)
}

// ObserveModeling feeds one board's modeling collection into the triage
// engine under the "modeling" provenance table: dropped maps each
// benchmark whose retry budget was exhausted to its flake reason, and
// every other benchmark in benches is a VALID single run. The modeling
// collection runs once per campaign, so each cell is one rep-0 run under
// the synthetic pair "-" (judge caps the floor at the observed count).
func ObserveModeling(t *Triage, board string, benches []string, dropped map[string]string) error {
	for _, b := range benches {
		run := Run{Verdict: Verdict{Class: Valid}}
		if reason, ok := dropped[b]; ok {
			run.Verdict = Verdict{Class: InfraFlake, Reason: reason}
		}
		if err := t.Observe("modeling", board, b, "-", run); err != nil {
			return err
		}
	}
	return nil
}

// CellVerdict judges one cell on demand — the verdict Table IV's
// renderer consults before printing a best pair.
func (t *Triage) CellVerdict(table, board, bench, pair string) (Verdict, bool) {
	t.mu.Lock()
	runs := t.runs[cellKey{Table: table, Board: board, Bench: bench, Pair: pair}]
	t.mu.Unlock()
	if len(runs) == 0 {
		return Verdict{}, false
	}
	v, _ := t.judge(runs)
	return v, true
}

// BenchVerdict aggregates one (table, board, bench) group over its
// pairs: the group is VALID only when every pair cell is VALID — a
// best-pair claim is indefensible when any candidate pair went
// unmeasured. A non-valid group reports the first offending pair's
// verdict (pairs in lexical order).
func (t *Triage) BenchVerdict(table, board, bench string) (Verdict, bool) {
	t.mu.Lock()
	var keys []cellKey
	for k := range t.runs {
		if k.Table == table && k.Board == board && k.Bench == bench {
			keys = append(keys, k)
		}
	}
	t.mu.Unlock()
	if len(keys) == 0 {
		return Verdict{}, false
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].Pair < keys[b].Pair })
	out := Verdict{Class: Valid}
	for _, k := range keys {
		v, ok := t.CellVerdict(table, board, bench, k.Pair)
		if !ok {
			continue
		}
		if v.Class != Valid {
			return Verdict{Class: v.Class,
				Reason: fmt.Sprintf("pair %s: %s", k.Pair, v.Reason)}, true
		}
		if v.Reason != "" && out.Reason == "" {
			out.Reason = fmt.Sprintf("pair %s: %s", k.Pair, v.Reason)
		}
	}
	return out, true
}
