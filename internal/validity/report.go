package validity

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ReportSchema versions the machine-readable triage report
// (reports/baseline.json). Bump on any field change.
const ReportSchema = 1

// CellReport is one cell's final verdict in the triage report.
type CellReport struct {
	Table     string  `json:"table"`
	Board     string  `json:"board"`
	Bench     string  `json:"bench"`
	Pair      string  `json:"pair"`
	Class     Class   `json:"class"`
	Reason    string  `json:"reason,omitempty"`
	Reps      int     `json:"reps"`
	ValidReps int     `json:"valid_reps"`
	Runs      []Run   `json:"runs"`
	Spread    float64 `json:"time_spread,omitempty"`
}

// TableReport is one table's provenance summary.
type TableReport struct {
	Cells       int      `json:"cells"`
	Publishable int      `json:"publishable"`
	Unstable    []string `json:"unstable,omitempty"` // "board/bench@pair" of non-VALID cells
}

// Report is the machine-readable triage artifact: verdict counts, the
// cohort identity, per-table provenance and every cell's judgement.
// Marshalling is deterministic — slices are sorted, and Go's JSON
// encoder renders map keys in sorted order.
type Report struct {
	Schema      int                    `json:"schema"`
	Cohort      Cohort                 `json:"cohort"`
	CohortHash  string                 `json:"cohort_hash"`
	Repetitions int                    `json:"repetitions"`
	MinValid    int                    `json:"min_valid"`
	Tolerance   float64                `json:"tolerance"`
	Counts      map[Class]int          `json:"verdicts"`
	RunCounts   map[Class]int          `json:"run_verdicts"`
	Tables      map[string]TableReport `json:"tables"`
	Cells       []CellReport           `json:"cells"`
}

// Finalize judges every accumulated cell and assembles the report.
//
//gpulint:deterministic
func (t *Triage) Finalize() *Report {
	t.mu.Lock()
	keys := make([]cellKey, 0, len(t.runs))
	for k := range t.runs {
		keys = append(keys, k)
	}
	t.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Table != kb.Table {
			return ka.Table < kb.Table
		}
		if ka.Board != kb.Board {
			return ka.Board < kb.Board
		}
		if ka.Bench != kb.Bench {
			return ka.Bench < kb.Bench
		}
		return ka.Pair < kb.Pair
	})

	rep := &Report{
		Schema:      ReportSchema,
		Cohort:      t.cohort,
		CohortHash:  t.cohort.Hash(),
		Repetitions: t.repetitions,
		MinValid:    t.minValid,
		Tolerance:   t.tolerance,
		Counts:      map[Class]int{Valid: 0, ModelFailure: 0, InfraFlake: 0},
		RunCounts:   map[Class]int{Valid: 0, ModelFailure: 0, InfraFlake: 0},
		Tables:      map[string]TableReport{},
	}
	for _, k := range keys {
		t.mu.Lock()
		runs := append([]Run(nil), t.runs[k]...)
		t.mu.Unlock()
		sort.Slice(runs, func(a, b int) bool { return runs[a].Rep < runs[b].Rep })
		verdict, valid := t.judge(runs)
		times := make([]float64, 0, len(runs))
		for _, r := range runs {
			rep.RunCounts[r.Verdict.Class]++
			if r.Verdict.Class == Valid {
				times = append(times, r.Time)
			}
		}
		cell := CellReport{
			Table: k.Table, Board: k.Board, Bench: k.Bench, Pair: k.Pair,
			Class: verdict.Class, Reason: verdict.Reason,
			Reps: len(runs), ValidReps: valid, Runs: runs,
			Spread: spread(times),
		}
		rep.Cells = append(rep.Cells, cell)
		rep.Counts[verdict.Class]++
		tr := rep.Tables[k.Table]
		tr.Cells++
		if verdict.Class == Valid {
			tr.Publishable++
		} else {
			tr.Unstable = append(tr.Unstable,
				fmt.Sprintf("%s/%s@%s", k.Board, k.Bench, k.Pair))
		}
		rep.Tables[k.Table] = tr
	}
	return rep
}

// Publishable reports whether every cell of the report is VALID.
func (r *Report) Publishable() bool {
	return r.Counts[ModelFailure] == 0 && r.Counts[InfraFlake] == 0
}

// Summary renders the one-paragraph human form the text report embeds.
func (r *Report) Summary() string {
	total := len(r.Cells)
	return fmt.Sprintf("%s\nrepetitions %d, min valid %d, tolerance %.1f%%\ncells: %d VALID, %d MODEL_FAILURE, %d INFRA_FLAKE; %d/%d publishable",
		r.Cohort, r.Repetitions, r.MinValid, r.Tolerance*100,
		r.Counts[Valid], r.Counts[ModelFailure], r.Counts[InfraFlake],
		r.Counts[Valid], total)
}

// WriteJSON renders the report as deterministic, indented JSON.
//
//gpulint:deterministic
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, creating parent directories —
// the `-triage-out reports/baseline.json` flag lands here.
func (r *Report) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("validity: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("validity: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("validity: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("validity: %w", err)
	}
	return nil
}

// ReadReport parses a triage report and validates its structure:
// schema match, known classes, count/cell agreement, and a cohort hash
// consistent with the embedded cohort. cmd/triagecheck builds on this.
func ReadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("validity: parsing report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("validity: report schema %d, want %d", r.Schema, ReportSchema)
	}
	if r.CohortHash == "" {
		return nil, fmt.Errorf("validity: report carries no cohort hash")
	}
	if got := r.Cohort.Hash(); got != r.CohortHash {
		return nil, fmt.Errorf("validity: cohort hash %s does not match embedded cohort (%s)", r.CohortHash, got)
	}
	counts := map[Class]int{Valid: 0, ModelFailure: 0, InfraFlake: 0}
	tables := map[string]int{}
	for _, c := range r.Cells {
		if !KnownClass(c.Class) {
			return nil, fmt.Errorf("validity: cell %s/%s@%s has unknown class %q", c.Board, c.Bench, c.Pair, c.Class)
		}
		counts[c.Class]++
		tables[c.Table]++
	}
	for _, cl := range Classes() {
		if counts[cl] != r.Counts[cl] {
			return nil, fmt.Errorf("validity: verdict count mismatch for %s: header says %d, cells hold %d",
				cl, r.Counts[cl], counts[cl])
		}
	}
	for name, tr := range r.Tables {
		if tables[name] != tr.Cells {
			return nil, fmt.Errorf("validity: table %q claims %d cells, report holds %d", name, tr.Cells, tables[name])
		}
	}
	return &r, nil
}
