// Package validity is the campaign triage engine: the benchmarking
// validity policy of ROADMAP open item 5 ported into code. Every
// measurement a campaign produces is classified into one of three
// classes — VALID, MODEL_FAILURE, INFRA_FLAKE — by rule, not by
// eyeball, and a table cell is "publishable" only when enough valid
// repetitions back it and they agree with each other.
//
// The pieces:
//
//   - Class / Verdict: the three-way classification plus a
//     human-readable reason ("retry budget exhausted at launch.hang
//     after 5 attempts"). ClassifyRun maps the fault layer's outcomes
//     (quarantined pairs, exhausted retries, watchdog kills,
//     low-confidence meter windows) onto run verdicts.
//   - Cohort: the campaign identity — seed, board set, canonical fault
//     profile and a code-version hash. Its hash is stamped into the
//     checkpoint journal header, the metrics exposition and the triage
//     report; a mismatch is a hard error, never a silent reset.
//   - Triage: the accumulator. Sweeps feed it one Run per
//     (table, board, bench, pair, repetition); Finalize applies the
//     repetition gate (≥ MinValid valid runs per cell) and the
//     deterministic cross-repetition agreement check, and emits the
//     machine-readable Report (reports/baseline.json).
//
// The class semantics follow the usual benchmarking-triage taxonomy:
//
//   - VALID: the measurement exists, its meter confidence clears the
//     floor, and — in a repetition cohort — enough repetitions agree.
//   - INFRA_FLAKE: the harness, not the subject, failed — retry budgets
//     exhausted (boot.fail, clockset.fail, launch.hang watchdog kills),
//     or a meter window whose confidence fell below the floor. The cell
//     holds no defensible measurement.
//   - MODEL_FAILURE: the measurements exist and are individually
//     confident, but repetitions disagree beyond tolerance — the
//     subject's behaviour, not the harness, is unstable.
//
// Everything here is a pure function of its inputs: triage of the same
// campaign is byte-identical at any worker count.
package validity

import (
	"fmt"
)

// Class is the three-way triage classification.
type Class string

const (
	// Valid marks a defensible measurement (or cell).
	Valid Class = "VALID"
	// ModelFailure marks measurements that exist but disagree across
	// repetitions — the subject is unstable, not the harness.
	ModelFailure Class = "MODEL_FAILURE"
	// InfraFlake marks harness-level failures: exhausted retry budgets,
	// watchdog kills, boot failures, low-confidence meter windows.
	InfraFlake Class = "INFRA_FLAKE"
)

// Classes lists the classes in report order.
func Classes() []Class { return []Class{Valid, ModelFailure, InfraFlake} }

// KnownClass reports whether c is one of the three triage classes.
func KnownClass(c Class) bool {
	return c == Valid || c == ModelFailure || c == InfraFlake
}

// Verdict is one classification with its reason. The zero value is not
// a verdict — producers must classify explicitly.
type Verdict struct {
	Class  Class  `json:"class"`
	Reason string `json:"reason,omitempty"`
}

// DefaultMinConfidence is the meter-window confidence floor: a
// measurement reconstructed beyond this fraction of interpolated
// samples is an infrastructure flake, not a measurement.
const DefaultMinConfidence = 0.9

// RunFacts is what one sweep cell's run exposes to classification —
// the fault-campaign bookkeeping the resilient harness already
// records on every PairResult.
type RunFacts struct {
	// Quarantined marks a cell that exhausted its retry budget and
	// holds no measurement; FailPoint names the fault that kept firing
	// (e.g. "launch.hang" for watchdog kills, "boot.fail" for a board
	// that never came up).
	Quarantined bool
	FailPoint   string
	// Retries is the number of attempts beyond the first.
	Retries int
	// Confidence is the measurement's genuine-sample fraction (1 for a
	// clean measurement, 0 for a quarantined cell); Interpolated counts
	// the reconstructed samples.
	Confidence   float64
	Interpolated int
}

// ClassifyRun maps one run's fault outcomes onto a verdict:
//
//   - quarantined (retry budget exhausted, watchdog kill, dead boot)
//     → INFRA_FLAKE naming the fault point and the attempt count;
//   - meter confidence below the floor → INFRA_FLAKE with a distinct
//     low-confidence reason naming the interpolation damage;
//   - confidence below 1 but above the floor → VALID, with the
//     interpolation noted so the triage report stays traceable;
//   - clean → VALID with no reason.
//
// Cross-repetition disagreement (MODEL_FAILURE) is a cohort property
// and is judged by Triage, never by a single run.
func ClassifyRun(f RunFacts) Verdict {
	if f.Quarantined {
		point := f.FailPoint
		if point == "" {
			point = "unknown fault"
		}
		return Verdict{Class: InfraFlake,
			Reason: fmt.Sprintf("retry budget exhausted at %s after %d attempts", point, f.Retries+1)}
	}
	if f.Confidence > 0 && f.Confidence < DefaultMinConfidence {
		return Verdict{Class: InfraFlake,
			Reason: fmt.Sprintf("meter confidence %.2f below %.2f floor (%d samples interpolated)",
				f.Confidence, DefaultMinConfidence, f.Interpolated)}
	}
	if f.Interpolated > 0 {
		return Verdict{Class: Valid,
			Reason: fmt.Sprintf("accepted with %d interpolated samples (confidence %.2f)",
				f.Interpolated, f.Confidence)}
	}
	return Verdict{Class: Valid}
}
