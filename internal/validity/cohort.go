package validity

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"strings"
)

// Cohort is a campaign's identity: the configuration under which every
// one of its measurements was taken. Two runs belong to the same cohort
// — and only then may share a checkpoint journal or be aggregated into
// one triage report — when all four fields match. The hash is stamped
// into the journal header, the metrics exposition
// (campaign_cohort_info) and the triage report.
type Cohort struct {
	// Seed drives every noise and fault stream.
	Seed int64 `json:"seed"`
	// Boards is the resolved board set, in campaign order.
	Boards []string `json:"boards"`
	// Profile is the canonical fault-profile spec ("" when fault-free).
	Profile string `json:"profile"`
	// CodeVersion identifies the code that produced the measurements —
	// the VCS revision when the binary carries one, else "unknown".
	// Resolve with ResolveCodeVersion; tests may pin it.
	CodeVersion string `json:"code_version"`
}

// canonical renders the cohort as one unambiguous line. Board names
// cannot contain newlines or the field separator, so the rendering is
// injective.
func (c Cohort) canonical() string {
	return fmt.Sprintf("seed=%d|boards=%s|profile=%s|code=%s",
		c.Seed, strings.Join(c.Boards, ","), c.Profile, c.CodeVersion)
}

// Hash returns the cohort's identity hash: the first 16 hex digits of
// the SHA-256 of the canonical rendering. Deterministic across runs,
// worker counts and platforms.
//
//gpulint:deterministic
func (c Cohort) Hash() string {
	sum := sha256.Sum256([]byte(c.canonical()))
	return hex.EncodeToString(sum[:8])
}

// String renders the cohort for error messages and report headers.
func (c Cohort) String() string {
	profile := c.Profile
	if profile == "" {
		profile = "fault-free"
	}
	return fmt.Sprintf("cohort %s (seed %d, %d boards, %s, code %s)",
		c.Hash(), c.Seed, len(c.Boards), profile, c.CodeVersion)
}

// Equal reports whether two cohorts are the same campaign identity.
func (c Cohort) Equal(o Cohort) bool {
	if c.Seed != o.Seed || c.Profile != o.Profile || c.CodeVersion != o.CodeVersion ||
		len(c.Boards) != len(o.Boards) {
		return false
	}
	for i := range c.Boards {
		if c.Boards[i] != o.Boards[i] {
			return false
		}
	}
	return true
}

// ResolveCodeVersion derives the running binary's code-version stamp
// from its embedded build info: the VCS revision (suffixed "+dirty"
// when the worktree was modified) when present, else "unknown" — test
// binaries and `go run` builds usually carry no VCS stamp, and two
// "unknown" builds are deliberately treated as the same version rather
// than poisoning every local journal.
func ResolveCodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	revision, modified := "", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if revision == "" {
		return "unknown"
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	return revision + modified
}
