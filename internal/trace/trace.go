// Package trace exports simulated runs as Chrome/Perfetto trace JSON
// (chrome://tracing, ui.perfetto.dev): kernel launches become duration
// slices, and the metered wall power becomes a counter track sampled at
// every power-level change. A power-and-timeline view of a DVFS sweep
// makes the Section III behaviour immediately visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gpuperf/internal/meter"
)

// event is one Chrome trace event (the JSON array format).
type event struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`            // microseconds
	Dur   float64           `json:"dur,omitempty"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant-event scope
	Args  map[string]string `json:"args,omitempty"`
}

type counterEvent struct {
	Name  string             `json:"name"`
	Phase string             `json:"ph"`
	TS    float64            `json:"ts"`
	PID   int                `json:"pid"`
	Args  map[string]float64 `json:"args"`
}

// Builder accumulates trace events. Tracks map to Chrome "threads".
type Builder struct {
	slices   []event
	counters []counterEvent
	tracks   map[string]int
	meta     []event
}

// NewBuilder returns an empty trace. The single Chrome "process" is named
// up front so Perfetto shows "gpuperf campaign" instead of a bare pid.
func NewBuilder() *Builder {
	b := &Builder{tracks: map[string]int{}}
	b.meta = append(b.meta, event{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]string{"name": "gpuperf campaign"},
	})
	return b
}

func (b *Builder) track(name string) int {
	if id, ok := b.tracks[name]; ok {
		return id
	}
	id := len(b.tracks) + 1
	b.tracks[name] = id
	b.meta = append(b.meta, event{
		Name: "thread_name", Phase: "M", PID: 1, TID: id,
		Args: map[string]string{"name": name},
	})
	return id
}

// AddSlice records a named duration on a track; times in seconds.
func (b *Builder) AddSlice(track, name string, startS, durS float64, args map[string]string) {
	b.slices = append(b.slices, event{
		Name: name, Phase: "X",
		TS: startS * 1e6, Dur: durS * 1e6,
		PID: 1, TID: b.track(track),
		Args: args,
	})
}

// AddCounter records a counter sample; time in seconds.
func (b *Builder) AddCounter(counter string, tsS, value float64) {
	b.AddCounterArgs(counter, tsS, value, nil)
}

// AddCounterArgs records a counter sample carrying extra numeric args
// alongside the value (e.g. per-window interpolated flags); time in
// seconds. Extra keys must not collide with the counter name.
func (b *Builder) AddCounterArgs(counter string, tsS, value float64, extra map[string]float64) {
	args := map[string]float64{counter: value}
	for k, v := range extra {
		args[k] = v
	}
	b.counters = append(b.counters, counterEvent{
		Name: counter, Phase: "C", TS: tsS * 1e6, PID: 1,
		Args: args,
	})
}

// AddInstant records a thread-scoped instant event on a track (a retry,
// a fault injection, a cache hit); time in seconds.
func (b *Builder) AddInstant(track, name string, tsS float64, args map[string]string) {
	b.slices = append(b.slices, event{
		Name: name, Phase: "i", Scope: "t",
		TS: tsS * 1e6, PID: 1, TID: b.track(track),
		Args: args,
	})
}

// AddPowerTrace renders a metered power waveform as a counter track,
// emitting a sample at every level change (and a final closing sample).
func (b *Builder) AddPowerTrace(counter string, startS float64, tr meter.Trace) {
	at := startS
	for _, seg := range tr {
		b.AddCounter(counter, at, seg.Watts)
		at += seg.Duration
	}
	if len(tr) > 0 {
		b.AddCounter(counter, at, tr[len(tr)-1].Watts)
	}
}

// WriteJSON emits the Chrome trace (JSON array format), events sorted by
// timestamp as the viewers expect.
func (b *Builder) WriteJSON(w io.Writer) error {
	type anyEvent struct {
		ts  float64
		raw interface{}
	}
	all := make([]anyEvent, 0, len(b.slices)+len(b.counters)+len(b.meta))
	for _, e := range b.meta {
		all = append(all, anyEvent{-1, e})
	}
	for _, e := range b.slices {
		all = append(all, anyEvent{e.TS, e})
	}
	for _, e := range b.counters {
		all = append(all, anyEvent{e.TS, e})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ts < all[j].ts })

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range all {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		data, err := json.Marshal(e.raw)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// FromRun builds a standard run trace: one slice per trace segment on a
// "power levels" track plus the wall-power counter. name labels the run.
func FromRun(name string, tr meter.Trace) *Builder {
	b := NewBuilder()
	at := 0.0
	for i, seg := range tr {
		b.AddSlice("power levels", fmt.Sprintf("%s #%d (%.0f W)", name, i, seg.Watts),
			at, seg.Duration, map[string]string{"watts": fmt.Sprintf("%.1f", seg.Watts)})
		at += seg.Duration
	}
	b.AddPowerTrace("wall power (W)", 0, tr)
	return b
}
