package trace

import (
	"fmt"
	"io"
	"os"

	"gpuperf/internal/obs"
)

// FromRecorder renders an obs.Recorder's deterministic layout as one
// Chrome/Perfetto trace: each virtual-time track becomes a named thread,
// slices and instants land on it, and counter samples (the meter's 50 ms
// power windows, with their per-window interpolated flags) merge onto
// process-wide counter tracks. The result is a pure function of the
// recorded events — byte-identical across runs at the same seed.
//
//gpulint:deterministic
func FromRecorder(rec *obs.Recorder) *Builder {
	b := NewBuilder()
	for _, tl := range rec.Layout() {
		for i := range tl.Events {
			e := &tl.Events[i]
			tsS := float64(tl.OffsetUS+e.Start) / 1e6
			switch e.Kind {
			case obs.KindSlice:
				b.AddSlice(tl.Name, e.Name, tsS, float64(e.Dur)/1e6, argMap(e.Args))
			case obs.KindInstant:
				b.AddInstant(tl.Name, e.Name, tsS, argMap(e.Args))
			case obs.KindCounter:
				b.AddCounterArgs(e.Name, tsS, e.Value, numMap(e.Num))
			}
		}
	}
	return b
}

func argMap(args []obs.Arg) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, a := range args {
		m[a.Key] = a.Value
	}
	return m
}

func numMap(args []obs.NumArg) map[string]float64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]float64, len(args))
	for _, a := range args {
		m[a.Key] = a.Value
	}
	return m
}

// WriteArtifacts writes a recorder's export artifacts — Chrome trace
// JSON, Prometheus metrics exposition, JSONL events — to the given paths;
// empty paths are skipped. The shared exit path of every CLI surfacing
// -trace-out / -metrics-out / -events-out.
func WriteArtifacts(rec *obs.Recorder, traceOut, metricsOut, eventsOut string) error {
	if rec == nil {
		return nil
	}
	write := func(path, what string, emit func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("writing %s: %w", what, err)
		}
		if err := emit(f); err != nil {
			_ = f.Close() // the emit error is the one worth reporting
			return fmt.Errorf("writing %s: %w", what, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", what, err)
		}
		return nil
	}
	if err := write(traceOut, "trace", func(w io.Writer) error {
		return FromRecorder(rec).WriteJSON(w)
	}); err != nil {
		return err
	}
	if err := write(metricsOut, "metrics", rec.WriteMetrics); err != nil {
		return err
	}
	return write(eventsOut, "events", rec.WriteEvents)
}
