package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuperf/internal/driver"
	"gpuperf/internal/meter"
	"gpuperf/internal/obs"
	"gpuperf/internal/workloads"
)

func TestWriteJSONIsValidAndSorted(t *testing.T) {
	b := NewBuilder()
	b.AddSlice("kernels", "k1", 0, 0.010, nil)
	b.AddSlice("kernels", "k2", 0.010, 0.020, map[string]string{"pair": "(H-H)"})
	b.AddCounter("wall power (W)", 0, 250)
	b.AddCounter("wall power (W)", 0.030, 120)

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 1 process-name + 1 thread-name metadata + 2 slices + 2 counters.
	if len(events) != 6 {
		t.Fatalf("%d events, want 6", len(events))
	}
	var lastTS float64 = -2
	for _, e := range events {
		ts, _ := e["ts"].(float64)
		if ts < lastTS {
			t.Fatal("events not sorted by timestamp")
		}
		lastTS = ts
	}
}

func TestFromRunCoversTrace(t *testing.T) {
	tr := meter.Trace{{Duration: 0.1, Watts: 200}, {Duration: 0.05, Watts: 150}}
	b := FromRun("demo", tr)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"200 W", "150 W", "wall power (W)", `"ph":"C"`, `"ph":"X"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestFromRealRun(t *testing.T) {
	dev, err := driver.OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	bench := workloads.ByName("gaussian")
	rr, err := dev.RunMetered(bench.Name, bench.Kernels(1), bench.HostGap(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromRun("gaussian", rr.Trace.Flatten()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON from a real run: %v", err)
	}
	if len(events) < 4 {
		t.Errorf("only %d events from a metered run", len(events))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBuilder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	// Only the process-name metadata event.
	if len(events) != 1 || events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("empty builder produced %v, want one process_name metadata event", events)
	}
}

func TestMetadataInstantsAndCounterArgs(t *testing.T) {
	b := NewBuilder()
	b.AddSlice("sweep/GTX 480/backprop", "run", 0, 0.010, nil)
	b.AddInstant("sweep/GTX 480/backprop", "retry", 0.005, map[string]string{"point": "launch.hang"})
	b.AddCounterArgs("wall power (W)", 0.002, 130, map[string]float64{"interpolated": 1})

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	phases, err := obs.TracePhases(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// process_name + thread_name, one slice, one instant, one counter.
	if phases["M"] != 2 || phases["X"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Errorf("phases = %v", phases)
	}
	s := buf.String()
	for _, want := range []string{
		`"name":"gpuperf campaign"`, `"name":"sweep/GTX 480/backprop"`,
		`"s":"t"`, `"interpolated":1`, `"point":"launch.hang"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestFromRecorder(t *testing.T) {
	build := func() *obs.Recorder {
		rec := obs.New()
		tr := rec.Track("sweep/demo")
		tr.Slice("kernel", 0.003, obs.Arg{Key: "pair", Value: "(H-H)"})
		tr.Instant("cache hit", obs.Arg{Key: "cache", Value: "device"})
		tr.Sample("wall power (W)", 140, obs.NumArg{Key: "interpolated", Value: 1})
		rec.Track("model/demo").Slice("collect", 0.001)
		return rec
	}
	var buf bytes.Buffer
	if err := FromRecorder(build()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	phases, err := obs.TracePhases(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// process_name + 2 thread_names; the counter track has no thread.
	if phases["M"] != 3 || phases["X"] != 2 || phases["i"] != 1 || phases["C"] != 1 {
		t.Errorf("phases = %v", phases)
	}

	// The bridge must be deterministic: same events, same bytes.
	var again bytes.Buffer
	if err := FromRecorder(build()).WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("FromRecorder output differs across identical recorders")
	}
}

func TestWriteArtifacts(t *testing.T) {
	rec := obs.New()
	rec.Track("t").Slice("run", 0.001)
	rec.Metrics().Counter("demo_total", "demo").Inc()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	metricsPath := filepath.Join(dir, "m.txt")
	eventsPath := filepath.Join(dir, "e.jsonl")
	if err := WriteArtifacts(rec, tracePath, metricsPath, eventsPath); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(traceData); err != nil {
		t.Error(err)
	}
	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(metricsData)); err != nil {
		t.Error(err)
	}
	eventsData, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(eventsData), `"kind":"slice"`) {
		t.Errorf("events JSONL missing slice: %q", eventsData)
	}

	// A nil recorder writes nothing at all.
	nilPath := filepath.Join(dir, "absent.json")
	if err := WriteArtifacts(nil, nilPath, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(nilPath); !os.IsNotExist(err) {
		t.Errorf("nil recorder created %s", nilPath)
	}
}
