package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpuperf/internal/driver"
	"gpuperf/internal/meter"
	"gpuperf/internal/workloads"
)

func TestWriteJSONIsValidAndSorted(t *testing.T) {
	b := NewBuilder()
	b.AddSlice("kernels", "k1", 0, 0.010, nil)
	b.AddSlice("kernels", "k2", 0.010, 0.020, map[string]string{"pair": "(H-H)"})
	b.AddCounter("wall power (W)", 0, 250)
	b.AddCounter("wall power (W)", 0.030, 120)

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 1 thread-name metadata + 2 slices + 2 counters.
	if len(events) != 5 {
		t.Fatalf("%d events, want 5", len(events))
	}
	var lastTS float64 = -2
	for _, e := range events {
		ts, _ := e["ts"].(float64)
		if ts < lastTS {
			t.Fatal("events not sorted by timestamp")
		}
		lastTS = ts
	}
}

func TestFromRunCoversTrace(t *testing.T) {
	tr := meter.Trace{{Duration: 0.1, Watts: 200}, {Duration: 0.05, Watts: 150}}
	b := FromRun("demo", tr)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"200 W", "150 W", "wall power (W)", `"ph":"C"`, `"ph":"X"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestFromRealRun(t *testing.T) {
	dev, err := driver.OpenBoard("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	bench := workloads.ByName("gaussian")
	rr, err := dev.RunMetered(bench.Name, bench.Kernels(1), bench.HostGap(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromRun("gaussian", rr.Trace.Flatten()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON from a real run: %v", err)
	}
	if len(events) < 4 {
		t.Errorf("only %d events from a metered run", len(events))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBuilder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("empty builder produced %d events", len(events))
	}
}
