package fault

import (
	"context"
	"fmt"
	"time"

	"gpuperf/internal/obs"
)

// Harness defaults. The backoff exists to model (and test) the real
// harness's pacing, not to wait out real hardware, so the scale is
// milliseconds.
const (
	DefaultMaxRetries    = 3
	DefaultLaunchTimeout = 5 * time.Second
	DefaultBackoffBase   = time.Millisecond
	DefaultBackoffMax    = 50 * time.Millisecond
)

// Resilience bundles the retry/watchdog policy the sweep and collect
// harnesses share. A nil *Resilience (or one with a nil Campaign) means
// "run exactly once, inject nothing" — the plain fast path.
type Resilience struct {
	Campaign *Campaign
	// MaxRetries bounds retries per unit of work (attempts = MaxRetries+1).
	MaxRetries int
	// LaunchTimeout arms the per-launch watchdog; <= 0 disables it (an
	// injected hang then fails fast instead of blocking).
	LaunchTimeout time.Duration
	// BackoffBase/BackoffMax shape the capped exponential backoff between
	// attempts; zero values take the package defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Sleep is the pause implementation, injectable so tests run at full
	// speed; nil means time.Sleep.
	Sleep func(time.Duration)
	// Obs, when non-nil, receives harness instrumentation: injected faults
	// by point, retries by point, total backoff pause. Call Observe once
	// after setting it (the harness setup paths do), before workers start.
	Obs *obs.Recorder
	ro  *resObs
}

// resObs holds the policy's registered metric handles.
type resObs struct {
	injections *obs.CounterVec
	retries    *obs.CounterVec
	backoffUS  *obs.Counter
}

// Observe registers the policy's metrics with Obs. Idempotent and
// nil-safe; must run on the setup path (before the worker pool), never
// from workers.
func (r *Resilience) Observe() {
	if r == nil || r.Obs == nil || r.ro != nil {
		return
	}
	reg := r.Obs.Metrics()
	r.ro = &resObs{
		injections: reg.CounterVec("fault_injections_total", "faults injected, by point", "point"),
		retries:    reg.CounterVec("fault_retries_total", "harness retries, by blamed fault point", "point"),
		backoffUS:  reg.Counter("fault_backoff_microseconds_total", "total deterministic backoff pause"),
	}
	// Materialize a zero base series per vec so the families appear in the
	// exposition even when the campaign never fires or retries.
	reg.Counter("fault_injections_total", "faults injected, by point")
	reg.Counter("fault_retries_total", "harness retries, by blamed fault point")
}

// RecordRetry counts one harness retry blamed on a fault point.
func (r *Resilience) RecordRetry(pt Point) {
	if r == nil || r.ro == nil {
		return
	}
	r.ro.retries.With(string(pt)).Inc()
}

// Attempts returns how many times a unit of work may run.
func (r *Resilience) Attempts() int {
	if r == nil || r.MaxRetries < 0 {
		return 1
	}
	return r.MaxRetries + 1
}

// Injector derives the (scope, attempt) injector, nil-safe. When the
// policy is observed, the injector reports each fired fault point.
func (r *Resilience) Injector(scope string, attempt int) *Injector {
	if r == nil {
		return nil
	}
	in := r.Campaign.Injector(scope, attempt)
	if in != nil && r.ro != nil {
		ro := r.ro
		in.onFire = func(pt Point) { ro.injections.With(string(pt)).Inc() }
	}
	return in
}

// Backoff returns the pause before retry #attempt (zero-based): a capped
// exponential with deterministic jitter in [d/2, d), derived by hashing
// (scope, attempt) so concurrent workers desynchronize without any global
// rand — reruns pause identically, keeping retry traces reproducible.
func (r *Resilience) Backoff(scope string, attempt int) time.Duration {
	base, max := DefaultBackoffBase, DefaultBackoffMax
	if r != nil && r.BackoffBase > 0 {
		base = r.BackoffBase
	}
	if r != nil && r.BackoffMax > 0 {
		max = r.BackoffMax
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	jitter := time.Duration(hash64(fmt.Sprintf("backoff|%s|%d", scope, attempt)) % uint64(half))
	return half + jitter
}

// Pause sleeps the backoff for retry #attempt.
func (r *Resilience) Pause(scope string, attempt int) {
	sleep := time.Sleep
	if r != nil && r.Sleep != nil {
		sleep = r.Sleep
	}
	d := r.Backoff(scope, attempt)
	if r != nil && r.ro != nil {
		r.ro.backoffUS.Add(d.Microseconds())
	}
	sleep(d)
}

// LaunchContext arms the per-launch watchdog: a context that expires
// after LaunchTimeout. With no timeout configured it returns the parent
// unchanged with a no-op cancel, so callers can always `defer cancel()`.
func (r *Resilience) LaunchContext(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if r == nil || r.LaunchTimeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, r.LaunchTimeout)
}

// ValidateHarness is the shared CLI flag validation: every command
// surfacing the harness flags rejects nonsense before booting anything.
func ValidateHarness(workers, maxRetries int, launchTimeout time.Duration) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", workers)
	}
	if maxRetries < 0 {
		return fmt.Errorf("-max-retries must be >= 0 (got %d)", maxRetries)
	}
	if launchTimeout <= 0 {
		return fmt.Errorf("-launch-timeout must be positive (got %v)", launchTimeout)
	}
	return nil
}
