package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Rule is one profile entry: inject Point with the given per-draw
// Probability. Param is a point-specific magnitude (spike watts, stuck-run
// length); zero means the point's default.
type Rule struct {
	Point       Point
	Probability float64
	Param       float64
}

// Profile is a parsed fault campaign specification.
type Profile struct {
	rules map[Point]Rule
}

// ParseProfile parses the "-faults" syntax: comma-separated
// "point:probability[:param]" entries, e.g.
//
//	launch.hang:0.02,meter.drop:0.1,meter.spike:0.05:2500
//
// Whitespace around entries is ignored. Probabilities must lie in [0, 1];
// params must be non-negative; duplicate points and unknown point names
// are errors. The empty string parses to an empty profile (no rules).
func ParseProfile(s string) (*Profile, error) {
	p := &Profile{rules: map[Point]Rule{}}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("fault: empty entry in profile %q", s)
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: entry %q: want point:probability[:param]", entry)
		}
		pt := Point(strings.TrimSpace(parts[0]))
		if !KnownPoint(pt) {
			return nil, fmt.Errorf("fault: unknown injection point %q (known: %s)", pt, pointList())
		}
		if _, dup := p.rules[pt]; dup {
			return nil, fmt.Errorf("fault: point %q appears twice", pt)
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: entry %q: bad probability: %w", entry, err)
		}
		if !(prob >= 0 && prob <= 1) { // also rejects NaN
			return nil, fmt.Errorf("fault: entry %q: probability %v outside [0, 1]", entry, prob)
		}
		r := Rule{Point: pt, Probability: prob}
		if len(parts) == 3 {
			param, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("fault: entry %q: bad param: %w", entry, err)
			}
			if !(param >= 0) || param > 1e12 {
				return nil, fmt.Errorf("fault: entry %q: param %v outside [0, 1e12]", entry, param)
			}
			r.Param = param
		}
		p.rules[pt] = r
	}
	return p, nil
}

// pointList renders the injectable points for error messages.
func pointList() string {
	var names []string
	for _, pt := range Points() {
		names = append(names, string(pt))
	}
	return strings.Join(names, " ")
}

// Rule returns the entry for a point, if the profile has one.
func (p *Profile) Rule(pt Point) (Rule, bool) {
	if p == nil {
		return Rule{}, false
	}
	r, ok := p.rules[pt]
	return r, ok
}

// Empty reports whether the profile has no rules at all. A profile whose
// rules all carry probability zero is not Empty — it still routes runs
// through the resilient harness, which the zero-probability determinism
// tests rely on.
func (p *Profile) Empty() bool { return p == nil || len(p.rules) == 0 }

// Rules returns the entries sorted by point name.
func (p *Profile) Rules() []Rule {
	if p == nil {
		return nil
	}
	out := make([]Rule, 0, len(p.rules))
	for _, r := range p.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// String renders the canonical form: entries sorted by point, params
// omitted when zero. ParseProfile(p.String()) reproduces p exactly, which
// the checkpoint journal uses to detect profile mismatches.
func (p *Profile) String() string {
	var parts []string
	for _, r := range p.Rules() {
		e := fmt.Sprintf("%s:%s", r.Point, strconv.FormatFloat(r.Probability, 'g', -1, 64))
		if r.Param != 0 {
			e += ":" + strconv.FormatFloat(r.Param, 'g', -1, 64)
		}
		parts = append(parts, e)
	}
	return strings.Join(parts, ",")
}
