package fault

import "math/rand"

// Campaign pairs a fault profile with its own seed. Fault decisions are a
// pure function of (seed, scope, attempt, point, draw index): reproducible
// run to run, independent across scopes and attempts, and — because the
// streams are derived under a "fault|" hash domain no noise stream uses —
// provably independent of the meter/profiler noise RNGs. Attaching a
// campaign whose probabilities are all zero changes no measured byte.
type Campaign struct {
	Profile *Profile
	Seed    int64
}

// Injector derives the injector for one (scope, attempt). scope names the
// unit of work being attempted (e.g. "GTX 680|backprop|(H-L)"); attempt is
// the zero-based retry ordinal, so each retry sees a fresh, deterministic
// fault stream rather than replaying the failure forever.
func (c *Campaign) Injector(scope string, attempt int) *Injector {
	if c == nil || c.Profile.Empty() {
		return nil
	}
	return &Injector{
		profile: c.Profile,
		base:    uint64(c.Seed) ^ hash64("fault|"+scope),
		attempt: attempt,
	}
}

// Injector draws fault decisions for one (scope, attempt). Each point owns
// an independent rand stream, lazily seeded, so the draw count at one
// point never shifts another point's decisions. The zero number of
// methods is safe on a nil receiver — un-faulted code paths pass nil
// injectors and pay only a nil check.
//
// An Injector is used by a single goroutine (the harness attaches one per
// device per attempt); it is not safe for concurrent use.
type Injector struct {
	profile *Profile
	base    uint64
	attempt int
	rngs    map[Point]*rand.Rand
	// onFire, when set (by Resilience.Injector under an observed policy),
	// is called for every fault decision that fires. It never affects the
	// decision streams.
	onFire func(Point)
}

// rng returns the point's lazily created stream.
func (in *Injector) rng(pt Point) *rand.Rand {
	if in.rngs == nil {
		in.rngs = map[Point]*rand.Rand{}
	}
	r, ok := in.rngs[pt]
	if !ok {
		seed := in.base ^ hash64("point|"+string(pt)) ^ (uint64(in.attempt+1) * 0x9e3779b97f4a7c15)
		r = rand.New(rand.NewSource(int64(seed)))
		in.rngs[pt] = r
	}
	return r
}

// Enabled reports whether the campaign can ever fire at this point
// (a rule exists with probability > 0). Fault-handling passes gate on it
// so a zero-probability profile is structurally identical to no profile.
func (in *Injector) Enabled(pt Point) bool {
	if in == nil {
		return false
	}
	r, ok := in.profile.Rule(pt)
	return ok && r.Probability > 0
}

// Hit draws one fault decision at the point. Certain outcomes
// (probability 0 or 1) do not consume a draw.
func (in *Injector) Hit(pt Point) bool {
	if in == nil {
		return false
	}
	r, ok := in.profile.Rule(pt)
	if !ok || r.Probability <= 0 {
		return false
	}
	if r.Probability >= 1 || in.rng(pt).Float64() < r.Probability {
		if in.onFire != nil {
			in.onFire(pt)
		}
		return true
	}
	return false
}

// Fail returns a classified *Error if the point fires, nil otherwise.
func (in *Injector) Fail(pt Point, scope string) error {
	if in.Hit(pt) {
		return &Error{Point: pt, Scope: scope}
	}
	return nil
}

// Param returns the point's configured magnitude, or def when the rule is
// absent or carries no param.
func (in *Injector) Param(pt Point, def float64) float64 {
	if in == nil {
		return def
	}
	if r, ok := in.profile.Rule(pt); ok && r.Param > 0 {
		return r.Param
	}
	return def
}

// Intn draws a uniform int in [0, n) from the point's stream — used to
// place a fault (which bit flips, where a stuck run starts).
func (in *Injector) Intn(pt Point, n int) int {
	if in == nil || n <= 0 {
		return 0
	}
	return in.rng(pt).Intn(n)
}
