package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func mustParse(t *testing.T, s string) *Profile {
	t.Helper()
	p, err := ParseProfile(s)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", s, err)
	}
	return p
}

func TestParseProfile(t *testing.T) {
	p := mustParse(t, " launch.hang:0.02, meter.drop:0.1 , meter.spike:0.05:2500")
	if r, ok := p.Rule(LaunchHang); !ok || r.Probability != 0.02 {
		t.Errorf("launch.hang rule = %+v, %v", r, ok)
	}
	if r, ok := p.Rule(MeterSpike); !ok || r.Param != 2500 {
		t.Errorf("meter.spike rule = %+v, %v", r, ok)
	}
	if _, ok := p.Rule(BootFail); ok {
		t.Error("unconfigured point reported a rule")
	}
	if p.Empty() {
		t.Error("non-empty profile reported Empty")
	}
	if !mustParse(t, "").Empty() || !mustParse(t, "  ").Empty() {
		t.Error("blank spec must parse to an empty profile")
	}
}

func TestParseProfileRejects(t *testing.T) {
	for _, bad := range []string{
		"launch.hang",              // no probability
		"launch.hang:0.5:1:2",      // too many fields
		"nosuch.point:0.5",         // unknown point
		"meter.degraded:0.5",       // pseudo-point is not injectable
		"launch.hang:1.5",          // probability > 1
		"launch.hang:-0.1",         // probability < 0
		"launch.hang:NaN",          // NaN probability
		"launch.hang:x",            // unparseable probability
		"meter.spike:0.5:-3",       // negative param
		"meter.spike:0.5:1e13",     // absurd param
		"launch.hang:0.5,,",        // empty entry
		"launch.hang:0.5,launch.hang:0.2", // duplicate
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

func TestProfileCanonicalString(t *testing.T) {
	// String sorts by point and drops zero params; Parse∘String is a
	// fixpoint (the journal's profile-mismatch check depends on it).
	p := mustParse(t, "meter.drop:0.1,launch.hang:0.02,meter.spike:0.05:2500,boot.fail:0")
	want := "boot.fail:0,launch.hang:0.02,meter.drop:0.1,meter.spike:0.05:2500"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	again := mustParse(t, p.String())
	if again.String() != p.String() {
		t.Errorf("Parse(String()) not a fixpoint: %q vs %q", again.String(), p.String())
	}
}

// TestInjectorDeterminism: same (seed, scope, attempt) ⇒ identical fault
// stream; different seeds, scopes or attempts ⇒ (almost surely) different.
func TestInjectorDeterminism(t *testing.T) {
	c := &Campaign{Profile: mustParse(t, "meter.drop:0.3,launch.hang:0.3"), Seed: 42}
	draw := func(in *Injector) (out []bool) {
		for i := 0; i < 64; i++ {
			out = append(out, in.Hit(MeterDrop))
		}
		return out
	}
	a := draw(c.Injector("GTX 680|backprop|(H-L)", 0))
	b := draw(c.Injector("GTX 680|backprop|(H-L)", 0))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, scope, attempt) diverged at draw %d", i)
		}
	}
	differs := func(name string, in *Injector) {
		o := draw(in)
		for i := range a {
			if a[i] != o[i] {
				return
			}
		}
		t.Errorf("%s produced an identical 64-draw stream", name)
	}
	differs("different attempt", c.Injector("GTX 680|backprop|(H-L)", 1))
	differs("different scope", c.Injector("GTX 680|backprop|(H-H)", 0))
	c2 := &Campaign{Profile: c.Profile, Seed: 43}
	differs("different seed", c2.Injector("GTX 680|backprop|(H-L)", 0))
}

// TestInjectorPointIndependence: draws at one point never shift another
// point's stream — the property that lets fault passes interleave freely.
func TestInjectorPointIndependence(t *testing.T) {
	c := &Campaign{Profile: mustParse(t, "meter.drop:0.5,meter.spike:0.5"), Seed: 7}
	seq := func(interleave bool) (out []bool) {
		in := c.Injector("scope", 0)
		for i := 0; i < 32; i++ {
			if interleave {
				in.Hit(MeterSpike) // extra draws on a different point
			}
			out = append(out, in.Hit(MeterDrop))
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("meter.drop stream shifted by meter.spike draws at index %d", i)
		}
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var in *Injector
	if in.Enabled(MeterDrop) || in.Hit(MeterDrop) || in.Fail(MeterDrop, "x") != nil {
		t.Error("nil injector must be inert")
	}
	if got := in.Param(MeterSpike, 9); got != 9 {
		t.Errorf("nil Param = %v, want default", got)
	}
	if in.Intn(MeterStuck, 10) != 0 {
		t.Error("nil Intn must be 0")
	}
	var c *Campaign
	if c.Injector("s", 0) != nil {
		t.Error("nil campaign must yield nil injector")
	}
	empty := &Campaign{Profile: mustParse(t, ""), Seed: 1}
	if empty.Injector("s", 0) != nil {
		t.Error("empty profile must yield nil injector")
	}
}

func TestInjectorCertainAndZero(t *testing.T) {
	c := &Campaign{Profile: mustParse(t, "boot.fail:1,clockset.fail:0"), Seed: 1}
	in := c.Injector("s", 0)
	if !in.Hit(BootFail) {
		t.Error("probability 1 must always hit")
	}
	if in.Hit(ClockSetFail) || in.Enabled(ClockSetFail) {
		t.Error("probability 0 must never hit nor be enabled")
	}
	if !in.Enabled(BootFail) {
		t.Error("probability 1 must be enabled")
	}
}

func TestErrorClassification(t *testing.T) {
	base := &Error{Point: LaunchHang, Scope: "GTX 680|backprop"}
	wrapped := fmt.Errorf("driver: %w", base)
	if !IsTransient(wrapped) || !IsFault(wrapped) {
		t.Error("wrapped injected fault must classify transient")
	}
	if pt, ok := PointOf(wrapped); !ok || pt != LaunchHang {
		t.Errorf("PointOf = %v, %v", pt, ok)
	}
	real := errors.New("invalid pair")
	if IsTransient(real) {
		t.Error("plain error classified transient")
	}
	if _, ok := PointOf(real); ok {
		t.Error("plain error yielded a point")
	}
	inner := errors.New("checksum mismatch")
	che := &Error{Point: BiosBitFlip, Err: inner}
	if !errors.Is(che, inner) {
		t.Error("Unwrap must expose the underlying error")
	}
}

func TestBackoff(t *testing.T) {
	r := &Resilience{BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond}
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := r.Backoff("scope", attempt)
		ideal := time.Millisecond << attempt
		if ideal > 8*time.Millisecond {
			ideal = 8 * time.Millisecond
		}
		if d < ideal/2 || d >= ideal {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, ideal/2, ideal)
		}
		if d2 := r.Backoff("scope", attempt); d2 != d {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d, d2)
		}
		if ideal > prevCeil {
			prevCeil = ideal
		}
	}
	if r.Backoff("other-scope", 3) == r.Backoff("scope", 3) {
		t.Log("jitter collision across scopes (possible but unlikely)")
	}
	// nil Resilience still produces a sane default pause.
	var nilr *Resilience
	if d := nilr.Backoff("s", 2); d <= 0 || d > DefaultBackoffMax {
		t.Errorf("nil backoff = %v", d)
	}
	if nilr.Attempts() != 1 {
		t.Errorf("nil Attempts = %d, want 1", nilr.Attempts())
	}
}

func TestPauseUsesInjectedSleep(t *testing.T) {
	var slept []time.Duration
	r := &Resilience{Sleep: func(d time.Duration) { slept = append(slept, d) }}
	r.Pause("s", 0)
	r.Pause("s", 1)
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	if slept[0] <= 0 {
		t.Errorf("first pause %v", slept[0])
	}
}

func TestLaunchContext(t *testing.T) {
	r := &Resilience{LaunchTimeout: time.Millisecond}
	ctx, cancel := r.LaunchContext(context.Background())
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog context never expired")
	}

	var nilr *Resilience
	ctx2, cancel2 := nilr.LaunchContext(nil)
	defer cancel2()
	if ctx2.Done() != nil {
		// context.Background().Done() is nil; the unarmed watchdog must
		// not spuriously cancel anything.
		select {
		case <-ctx2.Done():
			t.Fatal("unarmed watchdog context is already done")
		default:
		}
	}
}

func TestValidateHarness(t *testing.T) {
	if err := ValidateHarness(1, 0, time.Second); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []struct {
		workers, retries int
		timeout          time.Duration
	}{
		{0, 0, time.Second},
		{-3, 0, time.Second},
		{1, -1, time.Second},
		{1, 0, 0},
		{1, 0, -time.Second},
	} {
		if ValidateHarness(bad.workers, bad.retries, bad.timeout) == nil {
			t.Errorf("ValidateHarness(%d, %d, %v) accepted", bad.workers, bad.retries, bad.timeout)
		}
	}
}

func TestResilienceAttempts(t *testing.T) {
	if got := (&Resilience{MaxRetries: 3}).Attempts(); got != 4 {
		t.Errorf("Attempts = %d, want 4", got)
	}
	if got := (&Resilience{MaxRetries: 0}).Attempts(); got != 1 {
		t.Errorf("Attempts = %d, want 1", got)
	}
}
