package fault

import (
	"strings"
	"testing"
)

// FuzzParseProfile drives the profile parser with arbitrary specs. The
// invariants on accepted input: every rule is a known point with a
// probability in [0, 1] and a non-negative param, and the canonical
// String() form re-parses to the same canonical form (the fixpoint the
// checkpoint journal's header comparison relies on).
func FuzzParseProfile(f *testing.F) {
	// Corpus seeds: the canned CI chaos profile, every syntax feature,
	// and the error-path shapes.
	for _, seed := range []string{
		"",
		"launch.hang:0.05,meter.drop:0.1",
		"launch.hang:0.02",
		"meter.spike:0.05:2500",
		"meter.stuck:0.01:7",
		"bios.bitflip:1",
		"boot.fail:0,clockset.fail:0.5,launch.corrupt:1e-3",
		" launch.hang : 0.5 ",
		"launch.hang:0.5,launch.hang:0.5",
		"nosuch.point:0.5",
		"launch.hang:NaN",
		"launch.hang:-1",
		"launch.hang:2",
		"meter.spike:0.5:-2500",
		"launch.hang",
		"launch.hang:0.5:1:2",
		",,,",
		"launch.hang:0.5,",
		"meter.degraded:0.5",
		"launch.hang:1e309",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseProfile(spec)
		if err != nil {
			return // rejected input carries no invariants
		}
		for _, r := range p.Rules() {
			if !KnownPoint(r.Point) {
				t.Fatalf("accepted unknown point %q from %q", r.Point, spec)
			}
			if !(r.Probability >= 0 && r.Probability <= 1) {
				t.Fatalf("accepted probability %v from %q", r.Probability, spec)
			}
			if !(r.Param >= 0) {
				t.Fatalf("accepted param %v from %q", r.Param, spec)
			}
		}
		canon := p.String()
		p2, err := ParseProfile(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", spec, canon, got)
		}
		if strings.TrimSpace(spec) == "" && !p.Empty() {
			t.Fatalf("blank spec %q produced rules", spec)
		}
	})
}
