// Package fault is the deterministic fault-injection subsystem behind the
// resilient measurement harness. The paper's campaign ran on real hardware
// where reflashes brick, launches hang and meter samples drop; the
// reproduction injects those failures on purpose — seeded, reproducible,
// and strictly separated from the measurement-noise RNGs — so the retry,
// watchdog, quarantine and checkpoint machinery is exercised by tests
// instead of by luck.
//
// The pieces:
//
//   - Profile: a parseable campaign spec, "point:probability[:param]"
//     entries separated by commas (e.g. "launch.hang:0.02,meter.drop:0.1").
//   - Campaign: a profile plus a seed. Campaign.Injector derives the
//     per-(scope, attempt) injector whose per-point rand streams are
//     independent of each other and of every device noise stream.
//   - Error: the classification wrapper every injected failure is returned
//     in. All injected faults are transient by construction — permanence
//     emerges from probability 1.0 plus retry exhaustion.
//   - Resilience: the harness knobs (retries, backoff, launch watchdog)
//     shared by characterize, core and the CLIs.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Point names one injection site threaded through the stack.
type Point string

// The injectable fault points. Probabilities are per draw: per boot
// (boot.fail), per reflash (clockset.fail, bios.bitflip), per kernel
// launch (launch.hang), per profiled run (launch.corrupt) and per meter
// sample (meter.drop, meter.spike) or per measurement (meter.stuck).
const (
	BootFail      Point = "boot.fail"      // device fails to come up
	ClockSetFail  Point = "clockset.fail"  // VBIOS reflash rejected
	LaunchHang    Point = "launch.hang"    // kernel never returns (needs watchdog)
	LaunchCorrupt Point = "launch.corrupt" // profiler counter readout garbage
	MeterDrop     Point = "meter.drop"     // instrument returns no sample
	MeterSpike    Point = "meter.spike"    // transient out-of-range reading; param = added watts
	MeterStuck    Point = "meter.stuck"    // reading repeats; param = run length in samples
	BiosBitFlip   Point = "bios.bitflip"   // one bit flips during reflash
)

// MeterDegraded is a pseudo-point used only for classification: a
// measurement that survived with interpolated samples counts as a
// transient failure when the harness decides whether to retry. It is not
// injectable and ParseProfile rejects it.
const MeterDegraded Point = "meter.degraded"

// Points lists the injectable points in profile-canonical (sorted) order.
func Points() []Point {
	return []Point{
		BiosBitFlip, BootFail, ClockSetFail,
		LaunchCorrupt, LaunchHang,
		MeterDrop, MeterSpike, MeterStuck,
	}
}

// KnownPoint reports whether pt is an injectable point.
func KnownPoint(pt Point) bool {
	for _, p := range Points() {
		if p == pt {
			return true
		}
	}
	return false
}

// Error classifies one injected failure. Every injected fault is
// transient — retryable by definition; whether it *recovers* depends on
// its probability and the retry budget.
type Error struct {
	Point Point
	Scope string // what was being attempted, e.g. "GTX 680|backprop|(H-L)"
	Err   error  // underlying error, if the fault surfaced through one
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("injected fault %s", e.Point)
	if e.Scope != "" {
		msg += " during " + e.Scope
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) an injected fault and is
// therefore worth retrying. Real errors — invalid pairs, broken specs —
// are never transient.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsFault is a synonym for IsTransient kept for call sites that read
// better as a classification than as a retry decision.
func IsFault(err error) bool { return IsTransient(err) }

// PointOf extracts the fault point from a classified error chain.
func PointOf(err error) (Point, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Point, true
	}
	return "", false
}

// hash64 is the FNV-1a helper every seed derivation in this package uses.
// Domain-separation prefixes ("fault|…") keep fault streams disjoint from
// the measurement-noise streams, which hash bare benchmark names.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv: hash.Hash.Write never errors
	return h.Sum64()
}
