// Package selfcheck verifies the simulated apparatus end to end — the
// "does my install behave" tool a user runs before trusting experiment
// output. Each check exercises one cross-stack invariant (energy
// conservation through the meter, DVFS monotonicity, counter/energy
// decoupling, VBIOS round-trips, model sanity) and reports pass/fail with
// a human-readable detail line.
package selfcheck

import (
	"context"
	"fmt"
	"math"

	"gpuperf/internal/arch"
	"gpuperf/internal/bios"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/workloads"
)

// Result is one check's outcome.
type Result struct {
	Name   string
	OK     bool
	Detail string
}

// Run executes every check for every Table I board and returns the
// results in order. seed drives the noise streams.
func Run(seed int64) []Result {
	var out []Result
	add := func(name string, ok bool, detail string, args ...interface{}) {
		out = append(out, Result{Name: name, OK: ok, Detail: fmt.Sprintf(detail, args...)})
	}

	for _, spec := range arch.AllBoards() {
		prefix := spec.Name + ": "

		// 1. VBIOS round trip: build → patch every pair → reboot.
		img := bios.Build(spec)
		okPairs := true
		for _, p := range clock.ValidPairs(spec) {
			if err := bios.PatchBootPair(img, p); err != nil {
				okPairs = false
				break
			}
			if _, err := driver.Open(img); err != nil {
				okPairs = false
				break
			}
		}
		add(prefix+"vbios-roundtrip", okPairs, "%d pairs bootable", len(clock.ValidPairs(spec)))

		dev, err := driver.OpenBoard(spec.Name)
		if err != nil {
			add(prefix+"boot", false, "%v", err)
			continue
		}
		dev.Seed(seed)

		// 2. Energy conservation: metered energy tracks the trace
		// integral within sampling + noise error.
		b := workloads.ByName("gaussian")
		rr, err := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
		if err != nil {
			add(prefix+"metered-run", false, "%v", err)
			continue
		}
		obs := rr.Measurement.Duration
		// Integrate the trace over the observed window only.
		truthOverWindow := rr.Trace.EnergyUpTo(obs)
		drift := math.Abs(rr.Measurement.EnergyJoules-truthOverWindow) / truthOverWindow
		add(prefix+"energy-conservation", drift < 0.03,
			"meter vs trace drift %.2f%% over %.2f s", drift*100, obs)

		// 3. DVFS monotonicity: no valid pair beats (H-H) on time.
		base, err := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
		if err != nil {
			add(prefix+"dvfs-baseline", false, "%v", err)
			continue
		}
		monotone := true
		worst := 1.0
		for _, p := range clock.ValidPairs(spec) {
			if err := dev.SetClocks(p); err != nil {
				monotone = false
				break
			}
			r, err := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
			if err != nil {
				monotone = false
				break
			}
			ratio := r.TimePerIteration() / base.TimePerIteration()
			if ratio < worst {
				worst = ratio
			}
		}
		add(prefix+"dvfs-monotone", monotone && worst > 1-1e-9,
			"fastest pair at %.4fx of (H-H)", worst)
		if err := dev.SetClocks(clock.DefaultPair()); err != nil {
			add(prefix+"reset-clocks", false, "%v", err)
			continue
		}

		// 4. Counter determinism: same seed, same counters.
		dev.Seed(seed)
		dev.EnableProfiler()
		p1, err1 := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
		dev.Seed(seed)
		p2, err2 := dev.RunMetered(b.Name, b.Kernels(1), b.HostGap(1), 0.5)
		dev.DisableProfiler()
		det := err1 == nil && err2 == nil && len(p1.Counters) == len(p2.Counters)
		if det {
			for i := range p1.Counters {
				if p1.Counters[i] != p2.Counters[i] { //gpulint:ignore unitsafety -- bit-exact reproducibility is the invariant under test
					det = false
					break
				}
			}
		}
		add(prefix+"profiler-determinism", det, "%d counters", dev.CounterSet().Len())
	}

	// 5. Characterization shape: the Fig. 4 generation ladder.
	sweeps, err := characterize.Table4(seed)
	if err != nil {
		add("fig4-ladder", false, "%v", err)
	} else {
		m285 := characterize.MeanImprovementPct(sweeps["GTX 285"])
		m680 := characterize.MeanImprovementPct(sweeps["GTX 680"])
		add("fig4-ladder", m285 < m680,
			"mean improvement GTX 285 %.1f%% < GTX 680 %.1f%%", m285, m680)
	}

	// 6. Modeling sanity on a small corpus: both models train, time R̄²
	// above power R̄² (the paper's Table V/VI relationship).
	var small []*workloads.Benchmark
	for _, n := range []string{"sgemm", "lbm", "gaussian", "spmv"} {
		small = append(small, workloads.ByName(n))
	}
	ds, err := core.CollectCtx(context.Background(), "GTX 680", small,
		core.CollectOptions{Seed: seed, Workers: 1})
	if err != nil {
		add("models-train", false, "%v", err)
		return out
	}
	pm, errP := core.Train(ds, core.Power, core.MaxVariables)
	tm, errT := core.Train(ds, core.Time, core.MaxVariables)
	if errP != nil || errT != nil {
		add("models-train", false, "power: %v, time: %v", errP, errT)
		return out
	}
	add("models-train", true, "power R̄² %.2f, time R̄² %.2f", pm.AdjR2(), tm.AdjR2())
	add("r2-relationship", pm.AdjR2() < tm.AdjR2(),
		"power R̄² %.2f < time R̄² %.2f", pm.AdjR2(), tm.AdjR2())
	return out
}

// AllOK reports whether every check passed.
func AllOK(results []Result) bool {
	for _, r := range results {
		if !r.OK {
			return false
		}
	}
	return true
}
