package selfcheck

import (
	"path/filepath"
	"strings"
	"testing"

	"gpuperf/internal/lint"
)

// TestRunStaticReportsFindings points the static group at a fixture
// package with known errcheck violations: the errcheck invariant must
// fail and carry a file:line detail, while unrelated analyzers stay
// green. (The full-module clean run is covered by the lint self-run
// meta-test; re-running it here would only duplicate the work.)
func TestRunStaticReportsFindings(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "lint", "testdata", "src", "errcheck_bad")
	results := RunStatic(fixture)
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if r := byName["lint/load"]; !r.OK {
		t.Fatalf("fixture failed to load: %s", r.Detail)
	}
	if r := byName["lint/errcheck"]; r.OK {
		t.Error("lint/errcheck passed on a fixture with known violations")
	} else if !strings.Contains(r.Detail, "bad.go:") {
		t.Errorf("errcheck detail carries no file:line: %q", r.Detail)
	}
	if r := byName["lint/counterclass"]; !r.OK {
		t.Errorf("lint/counterclass should be clean on the errcheck fixture: %s", r.Detail)
	}
	if AllOK(results) {
		t.Error("AllOK should be false when an invariant fails")
	}
}

// TestRunStaticBadRoot: an unloadable root must surface as a failing
// load result, never a panic or an empty pass.
func TestRunStaticBadRoot(t *testing.T) {
	results := RunStatic(filepath.Join(t.TempDir(), "nope"))
	if len(results) != 1 || results[0].OK {
		t.Fatalf("want a single failing lint/load result, got %v", results)
	}
}
