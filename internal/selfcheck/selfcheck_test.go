package selfcheck

import "testing"

func TestAllChecksPass(t *testing.T) {
	results := Run(42)
	if len(results) < 15 {
		t.Fatalf("only %d checks ran", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s failed: %s", r.Name, r.Detail)
		}
	}
	if !AllOK(results) {
		t.Error("AllOK disagrees with individual results")
	}
}

func TestAllOKDetectsFailure(t *testing.T) {
	if !AllOK(nil) {
		t.Error("empty results should be OK")
	}
	if AllOK([]Result{{OK: true}, {OK: false}}) {
		t.Error("failure not detected")
	}
}
