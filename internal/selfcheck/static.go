package selfcheck

import (
	"fmt"

	"gpuperf/internal/lint"
)

// RunStatic executes the gpulint analyzer suite over the module rooted
// at root — the static half of the apparatus check. Where Run exercises
// dynamic invariants (energy conservation, DVFS monotonicity, …),
// RunStatic verifies the invariants the compiler cannot see: unit-safe
// frequency arithmetic, a complete core/memory-event counter
// classification, error/concurrency hygiene, and the determinism-taint
// contract over the artifact call graph. One Result per analyzer, plus
// one for the load/type-check itself.
//
// The whole suite runs in a single lint.Run so the module call graph is
// built once and the stale-ignore audit judges every //gpulint:ignore
// directive against the full analyzer set; the diagnostics are then
// bucketed per analyzer.
func RunStatic(root string) []Result {
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		return []Result{{Name: "lint/load", OK: false, Detail: err.Error()}}
	}
	out := []Result{{
		Name:   "lint/load",
		OK:     true,
		Detail: fmt.Sprintf("%d packages type-checked", len(pkgs)),
	}}
	byAnalyzer := map[string][]lint.Diagnostic{}
	for _, d := range lint.Run(pkgs, lint.All()) {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
	}
	for _, a := range lint.All() {
		diags := byAnalyzer[a.Name]
		r := Result{Name: "lint/" + a.Name, OK: len(diags) == 0, Detail: "clean"}
		if len(diags) > 0 {
			r.Detail = fmt.Sprintf("%d findings, first: %s", len(diags), diags[0])
		}
		out = append(out, r)
	}
	return out
}
