package selfcheck

import (
	"fmt"

	"gpuperf/internal/lint"
)

// RunStatic executes the gpulint analyzer suite over the module rooted
// at root — the static half of the apparatus check. Where Run exercises
// dynamic invariants (energy conservation, DVFS monotonicity, …),
// RunStatic verifies the invariants the compiler cannot see: unit-safe
// frequency arithmetic, a complete core/memory-event counter
// classification, error hygiene and concurrency hygiene. One Result per
// analyzer, plus one for the load/type-check itself.
func RunStatic(root string) []Result {
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		return []Result{{Name: "lint/load", OK: false, Detail: err.Error()}}
	}
	out := []Result{{
		Name:   "lint/load",
		OK:     true,
		Detail: fmt.Sprintf("%d packages type-checked", len(pkgs)),
	}}
	for _, a := range lint.All() {
		diags := lint.Run(pkgs, []*lint.Analyzer{a})
		r := Result{Name: "lint/" + a.Name, OK: len(diags) == 0, Detail: "clean"}
		if len(diags) > 0 {
			r.Detail = fmt.Sprintf("%d findings, first: %s", len(diags), diags[0])
		}
		out = append(out, r)
	}
	return out
}
