package gpuperf

import (
	"bytes"
	"testing"
)

func TestBoardsAndLookup(t *testing.T) {
	boards := Boards()
	if len(boards) != 4 {
		t.Fatalf("%d boards, want 4", len(boards))
	}
	for _, name := range boards {
		if Board(name) == nil {
			t.Errorf("Board(%q) = nil", name)
		}
	}
	if Board("nope") != nil {
		t.Error("Board of unknown name should be nil")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 37 {
		t.Fatalf("%d benchmarks, want 37", len(bs))
	}
	if BenchmarkByName(bs[0]) == nil {
		t.Error("BenchmarkByName failed for listed benchmark")
	}
}

func TestMustPair(t *testing.T) {
	if MustPair("H-L") != (Pair{Core: High, Mem: Low}) {
		t.Error("MustPair parsed wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPair should panic on bad input")
		}
	}()
	MustPair("nope")
}

func TestQuickstartFlow(t *testing.T) {
	dev, err := OpenDevice("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Board != "GTX 680" || run.Pair != DefaultPair() {
		t.Errorf("run metadata wrong: %+v", run)
	}
	if run.TimePerIterS <= 0 || run.AvgWatts <= 0 || run.EnergyPerIterJ <= 0 {
		t.Errorf("run measurements not positive: %+v", run)
	}

	if err := dev.SetClocks(MustPair("M-L")); err != nil {
		t.Fatal(err)
	}
	run2, err := RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.EnergyPerIterJ >= run.EnergyPerIterJ {
		t.Error("Kepler (M-L) should cut backprop energy vs (H-H)")
	}
	if run2.TimePerIterS <= run.TimePerIterS {
		t.Error("(M-L) should be slower than (H-H)")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	dev, err := OpenDevice("GTX 460")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBenchmark(dev, "doom", 1); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if _, err := Sweep(dev, "doom"); err == nil {
		t.Error("unknown benchmark sweep should fail")
	}
}

func TestBestPairFlow(t *testing.T) {
	dev, err := OpenDevice("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	pair, imp, err := BestPair(dev, "backprop")
	if err != nil {
		t.Fatal(err)
	}
	if pair == DefaultPair() {
		t.Error("GTX 680 backprop best pair should not be the default")
	}
	if imp <= 0 {
		t.Errorf("improvement %.1f%%, want positive", imp)
	}
	if dev.Clocks() != DefaultPair() {
		t.Error("BestPair should leave the device at (H-H)")
	}
}

func TestModelingFlow(t *testing.T) {
	ds, err := CollectDataset("GTX 680", 42)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := TrainModel(ds, PowerModel)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := TrainModel(ds, TimeModel)
	if err != nil {
		t.Fatal(err)
	}
	if pErr := PredictAll(pm, ds); pErr <= 0 || pErr > 40 {
		t.Errorf("power model error %.1f%% out of expected range", pErr)
	}
	if tErr := PredictAll(tm, ds); tErr <= 0 || tErr > 80 {
		t.Errorf("time model error %.1f%% out of expected range", tErr)
	}
}

func TestGovernorFlow(t *testing.T) {
	ds, err := CollectDataset("GTX 680", 42)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := TrainModel(ds, PowerModel)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := TrainModel(ds, TimeModel)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := OpenDevice("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewGovernor(dev, pm, tm, GovernorPolicy{Objective: MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunTuned(gov, "backprop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Error("unconstrained policy should always be feasible")
	}
	if out.Pair == DefaultPair() {
		t.Error("governor kept default clocks on Kepler backprop")
	}
	if _, err := RunTuned(gov, "doom", 1); err == nil {
		t.Error("RunTuned accepted unknown benchmark")
	}
}

func TestModelPersistenceFlow(t *testing.T) {
	ds, err := CollectBenchmarks("GTX 460", []string{"sgemm", "lbm", "gaussian"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainModel(ds, PowerModel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Predict(&ds.Rows[0]), m.Predict(&ds.Rows[0]); got != want {
		t.Errorf("prediction %g != %g after round trip", got, want)
	}
	var dbuf bytes.Buffer
	if err := SaveDataset(ds, &dbuf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(&dbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(ds.Rows) {
		t.Error("dataset rows lost in round trip")
	}
}

func TestCrossValidateFlow(t *testing.T) {
	ds, err := CollectBenchmarks("GTX 680", []string{"sgemm", "lbm", "gaussian", "spmv"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := CrossValidate(ds, TimeModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 4 {
		t.Errorf("%d folds, want 4", len(cv.Folds))
	}
	if cv.MeanAbsPct <= 0 {
		t.Error("non-positive CV error")
	}
}

func TestThermalFlow(t *testing.T) {
	dev, err := OpenDevice("GTX 480")
	if err != nil {
		t.Fatal(err)
	}
	b := BenchmarkByName("lavaMD")
	rr, err := dev.RunMetered(b.Name, b.Kernels(2), b.HostGap(2), 10)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultThermalParams(dev.Spec())
	res, err := SimulateThermal(rr.Trace.Flatten(), params, params.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxC <= params.AmbientC {
		t.Error("a loaded GF100 should heat above ambient")
	}
	if res.ExtraLeakJoules <= 0 {
		t.Error("no leakage surcharge on a hot run")
	}
}

func TestBatchPlanningFlow(t *testing.T) {
	dev, err := OpenDevice("GTX 680")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"backprop", "sgemm"}
	fast, err := PlanBatchUnderEnergy(dev, names, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Feasible || len(fast.Assignments) != 2 {
		t.Fatalf("unconstrained plan broken: %+v", fast)
	}
	tight, err := PlanBatchUnderEnergy(dev, names, fast.TotalEnergyJ*0.75)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Feasible && tight.TotalTimeS < fast.TotalTimeS {
		t.Error("tighter energy budget produced a faster plan")
	}
	dl, err := PlanBatchUnderDeadline(dev, names, fast.TotalTimeS*1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Feasible {
		t.Error("relaxed deadline should be feasible")
	}
	if dl.TotalEnergyJ > fast.TotalEnergyJ+1e-9 {
		t.Error("deadline plan should not use more energy than the all-fast plan")
	}
	if _, err := PlanBatchUnderEnergy(dev, []string{"doom"}, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
