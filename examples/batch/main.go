// Batch: energy-budgeted batch scheduling — the power-constrained
// throughput optimization of the paper's related work (Lee et al.), built
// on measured per-pair operating points. Five jobs run back to back on a
// GTX 680; the planner picks each job's frequency pair to minimize total
// time under a shrinking total energy budget.
package main

import (
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	dev, err := gpuperf.OpenDevice("GTX 680")
	if err != nil {
		log.Fatal(err)
	}
	jobs := []string{"backprop", "streamcluster", "gaussian", "sgemm", "lbm"}

	fast, err := gpuperf.PlanBatchUnderEnergy(dev, jobs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-fast batch: %.0f ms, %.1f J\n\n", fast.TotalTimeS*1e3, fast.TotalEnergyJ)

	for _, frac := range []float64{1.0, 0.85, 0.7, 0.55} {
		budget := fast.TotalEnergyJ * frac
		plan, err := gpuperf.PlanBatchUnderEnergy(dev, jobs, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %.1f J (%.0f%% of all-fast):", budget, frac*100)
		if !plan.Feasible {
			fmt.Printf(" INFEASIBLE — floor is %.1f J\n", plan.TotalEnergyJ)
			continue
		}
		fmt.Printf(" %.0f ms, %.1f J\n", plan.TotalTimeS*1e3, plan.TotalEnergyJ)
		for _, a := range plan.Assignments {
			fmt.Printf("  %-14s %s  %6.1f ms  %6.2f J\n",
				a.Job, a.Option.Pair, a.Option.TimeS*1e3, a.Option.EnergyJ)
		}
		fmt.Println()
	}
}
