// DVFS explorer: sweep one benchmark over every BIOS-exposed frequency
// pair on all four boards and print a per-pair energy/performance table
// with the best pair highlighted — the per-benchmark slice of the paper's
// Table IV experiment, usable as a tuning tool.
//
// Usage: dvfsexplorer [benchmark]   (default: streamcluster)
package main

import (
	"fmt"
	"log"
	"os"

	"gpuperf"
)

func main() {
	bench := "streamcluster"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	if gpuperf.BenchmarkByName(bench) == nil {
		log.Fatalf("unknown benchmark %q; pick one of %v", bench, gpuperf.Benchmarks())
	}

	for _, board := range gpuperf.Boards() {
		dev, err := gpuperf.OpenDevice(board)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := gpuperf.Sweep(dev, bench)
		if err != nil {
			log.Fatal(err)
		}
		best := sweep.Best()

		fmt.Printf("\n%s — %s\n", board, bench)
		fmt.Printf("  %-7s %12s %10s %12s %12s\n", "pair", "time/iter", "power", "energy/iter", "vs (H-H)")
		def := sweep.Default()
		for _, pr := range sweep.Pairs {
			marker := " "
			if pr.Pair == best.Pair {
				marker = "*"
			}
			gain := (def.EnergyPerIter/pr.EnergyPerIter - 1) * 100
			fmt.Printf("%s %-7s %9.1f ms %7.0f W %9.2f J %+11.1f%%\n",
				marker, pr.Pair, pr.TimePerIter*1e3, pr.AvgWatts, pr.EnergyPerIter, gain)
		}
		fmt.Printf("  best: %s (+%.1f%% efficiency, %.1f%% slower)\n",
			best.Pair, sweep.ImprovementPct(), sweep.PerfLossPct())
	}
}
