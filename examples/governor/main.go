// Governor: the paper's motivating application (Section V conclusion) —
// dynamic power/performance management built on the unified models. For
// each incoming kernel the governor profiles it once at the default clocks,
// predicts power and execution time at *every* frequency pair from the one
// unified model per GPU (no per-pair model instances, the paper's key
// advantage), and programs the pair that minimizes predicted energy while
// keeping predicted wall power under a cap.
//
// Usage: governor [wall-power-cap-in-watts]   (default: 230)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"gpuperf"
)

const board = "GTX 680"

func main() {
	powerCap := 230.0
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad power cap %q", os.Args[1])
		}
		powerCap = v
	}

	// Offline: train the unified models once.
	ds, err := gpuperf.CollectDataset(board, 42)
	if err != nil {
		log.Fatal(err)
	}
	powerModel, err := gpuperf.TrainModel(ds, gpuperf.PowerModel)
	if err != nil {
		log.Fatal(err)
	}
	timeModel, err := gpuperf.TrainModel(ds, gpuperf.TimeModel)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := gpuperf.OpenDevice(board)
	if err != nil {
		log.Fatal(err)
	}
	gov, err := gpuperf.NewGovernor(dev, powerModel, timeModel, gpuperf.GovernorPolicy{
		Objective:     gpuperf.MinEnergy,
		PowerCapWatts: powerCap,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("governor on %s, wall-power cap %.0f W\n", board, powerCap)
	fmt.Printf("models: power R̄² %.2f, time R̄² %.2f (one unified model each)\n\n",
		powerModel.AdjR2(), timeModel.AdjR2())

	for _, bench := range []string{"backprop", "streamcluster", "gaussian", "sgemm", "lbm"} {
		out, err := gpuperf.RunTuned(gov, bench, 1)
		if err != nil {
			log.Fatal(err)
		}
		status := "within cap"
		if out.MeasuredWatts > powerCap {
			status = "CAP MISS"
		}
		if !out.Feasible {
			status = "no feasible pair; fell back to (H-H)"
		}
		fmt.Printf("%-14s → %s  predicted %5.1f W / %6.1f ms, measured %5.1f W / %6.1f ms  (%s)\n",
			bench, out.Pair, out.PredictedWatts, out.PredictedTime*1e3,
			out.MeasuredWatts, out.MeasuredTime*1e3, status)
	}
}
