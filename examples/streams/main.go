// Streams: concurrent kernel execution (the feature behind the Table II
// concurrentKernels sample). Four small kernels that each occupy a slice
// of the machine run serially and then concurrently; the example prints
// the speedup and the overlaid wall-power trace the meter sees.
package main

import (
	"fmt"
	"log"

	"gpuperf"
	"gpuperf/internal/gpu"
)

func kernel(name string, blocks int) *gpu.KernelDesc {
	return &gpu.KernelDesc{
		Name:            name,
		Blocks:          blocks,
		ThreadsPerBlock: 256,
		RegsPerThread:   22,
		Phases: []gpu.PhaseDesc{{
			Name: "main", WarpInstsPerWarp: 2_000_000,
			FracALU: 0.7, FracMem: 0.02, FracBranch: 0.04,
			TxnPerMemInst: 1.1, L1Hit: 0.6, L2Hit: 0.6,
			WorkingSetBytes: 64 << 10, MLP: 5, IssueEff: 0.85,
		}},
	}
}

func main() {
	dev, err := gpuperf.OpenDevice("GTX 680")
	if err != nil {
		log.Fatal(err)
	}

	// Four kernels, each ~2 SMs' worth of work: alone they leave most of
	// the GPU idle.
	var kernels []*gpu.KernelDesc
	for i := 0; i < 4; i++ {
		kernels = append(kernels, kernel(fmt.Sprintf("stream%d", i), 16))
	}

	var serial float64
	for _, k := range kernels {
		lr, err := dev.Launch(k)
		if err != nil {
			log.Fatal(err)
		}
		serial += lr.Time
		fmt.Printf("%-9s alone: %6.2f ms at %.0f W\n", k.Name, lr.Time*1e3, lr.Trace.TrueAvgWatts())
	}

	conc, err := dev.LaunchConcurrent(kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial total      %6.2f ms\n", serial*1e3)
	fmt.Printf("concurrent batch  %6.2f ms (%.2fx speedup)\n", conc.Time*1e3, serial/conc.Time)
	for _, l := range conc.Launches {
		fmt.Printf("  %-9s on %d SMs: %6.2f ms\n", l.Kernel, l.SMs, l.Time*1e3)
	}
	fmt.Printf("\noverlaid wall-power trace (%d segments):\n", len(conc.Trace))
	at := 0.0
	for _, seg := range conc.Trace {
		fmt.Printf("  %7.2f–%7.2f ms  %.0f W\n", at*1e3, (at+seg.Duration)*1e3, seg.Watts)
		at += seg.Duration
	}
}
