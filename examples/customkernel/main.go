// Customkernel: workloads as data. The kernelspec text format (see
// internal/kernelspec) describes kernels the way the paper's related work
// characterizes them — instruction mixes, coalescing, cache behaviour —
// so a new workload needs no Go code. This example embeds a two-kernel
// pipeline, runs it on two boards, and sweeps its frequency pairs.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpuperf"
	"gpuperf/internal/kernelspec"
)

const pipeline = `
# stage 1: FFT-like compute with shared-memory butterflies
kernel fft_stage
  blocks  2400
  threads 256
  regs    28
  shared  8KiB
  phase butterflies
    insts       40000
    mix         alu=0.55 sfu=0.12 shared=0.18 mem=0.03 branch=0.03
    txn         1.0
    hits        l1=0.7 l2=0.7
    working-set 48KiB
    mlp         4
    issue-eff   0.9

# stage 2: scatter the spectrum back to DRAM
kernel scatter
  blocks  1600
  threads 256
  regs    14
  phase write
    insts       6000
    mix         alu=0.2 mem=0.5 branch=0.02
    txn         2.5
    store       0.9
    hits        l1=0.1 l2=0.2
    working-set 8MiB
    mlp         8
    issue-eff   0.75
`

func main() {
	kernels, err := kernelspec.Parse(strings.NewReader(pipeline))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d kernels from the .kspec text\n\n", len(kernels))

	for _, board := range []string{"GTX 460", "GTX 680"} {
		dev, err := gpuperf.OpenDevice(board)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", board)
		for _, pair := range gpuperf.ValidPairs(dev.Spec()) {
			if err := dev.SetClocks(pair); err != nil {
				log.Fatal(err)
			}
			rr, err := dev.RunMetered("fft-pipeline", kernels, 0.020, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-7s %8.2f ms/iter  %6.1f W  %7.2f J/iter\n",
				pair, rr.TimePerIteration()*1e3, rr.Measurement.AvgWatts, rr.EnergyPerIteration())
		}
		// Which stage binds, and where?
		for _, k := range kernels {
			an, err := dev.Analyze(k)
			if err != nil {
				log.Fatal(err)
			}
			top := an.Phases[0].Usages[0]
			fmt.Printf("  %-10s bound by %s (%.0f%% of its time)\n",
				k.Name, top.Resource, top.Fraction*100)
		}
		fmt.Println()
	}
}
