// Predictor: train the paper's unified power and performance models
// (Eq. 1 and Eq. 2) on one set of benchmarks and predict *unseen*
// benchmarks at *every* frequency pair — the cross-workload generalization
// the paper's Section IV models are built for. Prints per-row predictions
// and held-out error summaries.
package main

import (
	"fmt"
	"log"

	"gpuperf"
)

// The split: train on a spectrum-spanning majority, hold out three
// benchmarks the models never see.
var (
	trainSet = []string{
		"cfd", "gaussian", "heartwall", "hotspot", "kmeans", "lavaMD",
		"leukocyte", "lud", "nn", "nw", "srad_v1", "srad_v2",
		"cutcp", "histo", "lbm", "mri-q", "sgemm", "spmv", "stencil",
		"binomialOptions", "BlackScholes", "MersenneTwister",
		"MAdd", "MMul", "MTranspose",
	}
	testSet = []string{"streamcluster", "sad", "histogram256"}
)

func main() {
	const board = "GTX 680"
	train, err := gpuperf.CollectBenchmarks(board, trainSet, 42)
	if err != nil {
		log.Fatal(err)
	}
	test, err := gpuperf.CollectBenchmarks(board, testSet, 43)
	if err != nil {
		log.Fatal(err)
	}

	powerModel, err := gpuperf.TrainModel(train, gpuperf.PowerModel)
	if err != nil {
		log.Fatal(err)
	}
	timeModel, err := gpuperf.TrainModel(train, gpuperf.TimeModel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unified models for %s, trained on %d rows from %d benchmarks\n",
		board, len(train.Rows), len(trainSet))
	fmt.Printf("power model:  R̄² %.2f, variables %v\n", powerModel.AdjR2(), powerModel.Variables())
	fmt.Printf("time model:   R̄² %.2f, variables %v\n\n", timeModel.AdjR2(), timeModel.Variables())

	fmt.Printf("held-out predictions (%d rows, benchmarks never seen in training):\n", len(test.Rows))
	fmt.Printf("%-14s %-6s %10s %10s %12s %12s\n",
		"benchmark", "pair", "power", "pred", "time", "pred")
	shown := map[string]bool{}
	for i := range test.Rows {
		o := &test.Rows[i]
		// Print one size per benchmark-pair to keep the table readable.
		key := o.Benchmark + o.Pair.String()
		if shown[key] {
			continue
		}
		shown[key] = true
		fmt.Printf("%-14s %-6s %8.1f W %8.1f W %9.1f ms %9.1f ms\n",
			o.Benchmark, o.Pair,
			o.PowerW, powerModel.Predict(o),
			o.TimeS*1e3, timeModel.Predict(o)*1e3)
	}

	pe := powerModel.Evaluate(test.Rows)
	te := timeModel.Evaluate(test.Rows)
	fmt.Printf("\nheld-out error: power %.1f%% (%.1f W), time %.1f%%\n",
		pe.MeanAbsPct, pe.MeanAbsRaw, te.MeanAbsPct)
	fmt.Println("— one model per GPU covers every frequency pair, the paper's key claim.")
}
