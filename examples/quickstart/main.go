// Quickstart: boot a simulated GTX 680, run the paper's Fig. 1 showcase
// benchmark (Backprop) at the default clocks and at the Kepler sweet spot
// (Core-M, Mem-L), and print the energy saving — the paper's headline
// result, reproduced in a few lines of the public API.
package main

import (
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	dev, err := gpuperf.OpenDevice("GTX 680")
	if err != nil {
		log.Fatal(err)
	}

	def, err := gpuperf.RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backprop on %s at %s: %.1f ms/iter, %.0f W, %.2f J/iter\n",
		def.Board, def.Pair, def.TimePerIterS*1e3, def.AvgWatts, def.EnergyPerIterJ)

	// Reprogram the clocks the way the paper does: patch the VBIOS boot
	// performance level and reboot the device.
	if err := dev.SetClocks(gpuperf.MustPair("M-L")); err != nil {
		log.Fatal(err)
	}
	low, err := gpuperf.RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backprop on %s at %s: %.1f ms/iter, %.0f W, %.2f J/iter\n",
		low.Board, low.Pair, low.TimePerIterS*1e3, low.AvgWatts, low.EnergyPerIterJ)

	saving := (1 - low.EnergyPerIterJ/def.EnergyPerIterJ) * 100
	slowdown := (low.TimePerIterS/def.TimePerIterS - 1) * 100
	fmt.Printf("\n(M-L) vs (H-H): %.0f%% less energy for %.0f%% more time\n", saving, slowdown)
	fmt.Println("— the Kepler DVFS headroom the paper characterizes in Section III.")
}
