// Sustained: the thermal extension. The paper meters sub-minute runs where
// silicon temperature barely moves; this example runs a compute-heavy
// workload for a simulated minute on the leaky GF100 (GTX 480) and on
// Kepler (GTX 680), integrates the RC thermal model over the power traces,
// and prints temperature trajectories, the temperature-dependent leakage
// surcharge, and throttling, if any.
package main

import (
	"fmt"
	"log"

	"gpuperf"
)

func main() {
	for _, board := range []string{"GTX 480", "GTX 680"} {
		dev, err := gpuperf.OpenDevice(board)
		if err != nil {
			log.Fatal(err)
		}
		b := gpuperf.BenchmarkByName("lavaMD")
		rr, err := dev.RunMetered(b.Name, b.Kernels(4), b.HostGap(4), 60) // one sustained minute
		if err != nil {
			log.Fatal(err)
		}

		params := gpuperf.DefaultThermalParams(dev.Spec())
		res, err := gpuperf.SimulateThermal(rr.Trace.Flatten(), params, params.AmbientC)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s — lavaMD for %.0f s at (H-H)\n", board, rr.Time)
		fmt.Printf("  trace power      %.0f W avg\n", rr.Trace.TrueAvgWatts())
		fmt.Printf("  junction         %.1f °C peak (steady state %.1f °C)\n",
			res.MaxC, params.SteadyStateC(rr.Trace.TrueAvgWatts()))
		fmt.Printf("  leakage surcharge %.0f J over the run (%.1f W avg)\n",
			res.ExtraLeakJoules, res.ExtraLeakJoules/res.StretchedDuration)
		if res.ThrottledSeconds > 0 {
			fmt.Printf("  THROTTLED for %.1f s; run stretched to %.1f s\n",
				res.ThrottledSeconds, res.StretchedDuration)
		} else {
			fmt.Printf("  no throttling\n")
		}
		fmt.Println()
	}
	fmt.Println("— the GF100's leakage makes sustained power a moving target;")
	fmt.Println("  counter-based models never see it, one more reason real power")
	fmt.Println("  prediction errors stay in the tens of watts.")
}
