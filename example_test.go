package gpuperf_test

import (
	"context"
	"fmt"
	"log"

	"gpuperf"
)

// The session quick start: one Session owns the campaign configuration
// (seed, workers, boards, fault policy, checkpointing) and its Device
// factory hands out boards wired to it. Reprogram the clocks the way the
// paper does (VBIOS patch + reboot) and compare energies.
func Example() {
	s, err := gpuperf.OpenSession(gpuperf.WithBoards("GTX 680"))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	dev, err := s.Device("GTX 680")
	if err != nil {
		log.Fatal(err)
	}
	def, err := gpuperf.RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.SetClocks(gpuperf.MustPair("M-L")); err != nil {
		log.Fatal(err)
	}
	low, err := gpuperf.RunBenchmark(dev, "backprop", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy drops at (M-L): %v\n", low.EnergyPerIterJ < def.EnergyPerIterJ)
	// Output:
	// energy drops at (M-L): true
}

// A full context-aware sweep campaign through the Session engine — the
// paper's Table IV cells for one board, cancellable via the context and
// bit-identical at any worker count.
func ExampleOpenSession() {
	s, err := gpuperf.OpenSession(gpuperf.WithBoards("GTX 680"), gpuperf.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	results, err := s.Sweep(context.Background(), gpuperf.Table4Benchmarks())
	if err != nil {
		log.Fatal(err)
	}
	best := results["GTX 680"][0].Best()
	fmt.Printf("%d Table IV rows; backprop's best pair beats (H-H): %v\n",
		len(results["GTX 680"]), best.Pair != gpuperf.MustPair("H-H"))
	// Output:
	// 33 Table IV rows; backprop's best pair beats (H-H): true
}

// Enumerate the frequency pairs a board's BIOS exposes (Table III).
func ExampleValidPairs() {
	spec := gpuperf.Board("GTX 680")
	for _, p := range gpuperf.ValidPairs(spec) {
		fmt.Print(p, " ")
	}
	fmt.Println()
	// Output:
	// (H-H) (H-M) (H-L) (M-H) (M-M) (M-L) (L-H)
}

// Find the minimum-energy frequency pair for a workload — one cell of the
// paper's Table IV.
func ExampleBestPair() {
	dev, err := gpuperf.OpenDevice("GTX 285")
	if err != nil {
		log.Fatal(err)
	}
	pair, _, err := gpuperf.BestPair(dev, "streamcluster")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory-bound workloads keep Mem-H: %v\n", pair.Mem == gpuperf.High)
	// Output:
	// memory-bound workloads keep Mem-H: true
}

// Parse the paper's pair notation.
func ExampleParsePair() {
	p, err := gpuperf.ParsePair("(H-L)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Core, p.Mem)
	// Output:
	// H L
}

// Train the paper's unified models (Eq. 1 and Eq. 2) and check the Table
// V/VI relationship: the performance model's R̄² is far above the power
// model's.
func ExampleTrainModel() {
	ds, err := gpuperf.CollectDataset("GTX 680", 42)
	if err != nil {
		log.Fatal(err)
	}
	power, err := gpuperf.TrainModel(ds, gpuperf.PowerModel)
	if err != nil {
		log.Fatal(err)
	}
	time, err := gpuperf.TrainModel(ds, gpuperf.TimeModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one unified model per GPU, %d variables each\n", 10)
	fmt.Printf("power R̄² below time R̄²: %v\n", power.AdjR2() < time.AdjR2())
	// Output:
	// one unified model per GPU, 10 variables each
	// power R̄² below time R̄²: true
}

// Plan a batch of jobs under an energy budget (the related-work
// power-constrained scheduling problem, on measured operating points).
func ExamplePlanBatchUnderEnergy() {
	dev, err := gpuperf.OpenDevice("GTX 680")
	if err != nil {
		log.Fatal(err)
	}
	fast, err := gpuperf.PlanBatchUnderEnergy(dev, []string{"backprop", "sgemm"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	tight, err := gpuperf.PlanBatchUnderEnergy(dev, []string{"backprop", "sgemm"}, fast.TotalEnergyJ*0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tighter budget is feasible: %v, and no faster: %v\n",
		tight.Feasible, tight.TotalTimeS >= fast.TotalTimeS)
	// Output:
	// tighter budget is feasible: true, and no faster: true
}
