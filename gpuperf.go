// Package gpuperf is a simulation-backed reproduction of "Power and
// Performance Characterization and Modeling of GPU-Accelerated Systems"
// (Abe, Sasaki, Kato, Inoue, Edahiro, Peres — IPDPS Workshops 2014).
//
// It provides, end to end, the apparatus the paper built on real hardware:
//
//   - four simulated NVIDIA boards spanning three architecture generations
//     (GTX 285, GTX 460, GTX 480, GTX 680 — Table I), booted from synthetic
//     VBIOS images whose performance tables carry the DVFS levels;
//   - independent core/memory frequency scaling with implicit voltage
//     scaling, programmed by patching the VBIOS boot levels (Section II-B);
//   - a simulated Yokogawa WT1600 wall-power meter sampling every 50 ms;
//   - the 37 benchmarks of Table II as synthetic kernel specifications;
//   - the Section III characterization harness (best-energy frequency
//     pairs, Table IV and Fig. 4, the Figs. 1–3 curves); and
//   - the paper's primary contribution: unified statistical power and
//     performance models (Eq. 1 and Eq. 2) trained by forward selection
//     over per-architecture performance-counter sets (Section IV).
//
// The zero-dependency simulator makes every experiment in the paper
// reproducible on a laptop in seconds. See DESIGN.md for the substitutions
// made for the hardware apparatus and EXPERIMENTS.md for paper-vs-measured
// results of every table and figure.
//
// # Quick start
//
// A Session owns the campaign stack — seed, worker pool, fault policy,
// checkpoint journal, observability — and exposes the context-aware
// campaign methods:
//
//	s, err := gpuperf.OpenSession(gpuperf.WithBoards("GTX 680"))
//	if err != nil { ... }
//	defer s.Close()
//	results, err := s.Sweep(context.Background(), gpuperf.Table4Benchmarks())
//
// For single-device experiments the device API remains:
//
//	dev, err := gpuperf.OpenDevice("GTX 680")
//	if err != nil { ... }
//	run, err := gpuperf.RunBenchmark(dev, "backprop", 1.0)
//	fmt.Printf("%.1f ms, %.0f W\n", run.TimePerIterS*1e3, run.AvgWatts)
//
//	dev.SetClocks(gpuperf.MustPair("M-L")) // patches the VBIOS and reboots
//	run2, _ := gpuperf.RunBenchmark(dev, "backprop", 1.0)
//	fmt.Printf("energy saving: %.0f%%\n", (1-run2.EnergyPerIterJ/run.EnergyPerIterJ)*100)
package gpuperf

import (
	"context"
	"fmt"
	"io"

	"gpuperf/internal/arch"
	"gpuperf/internal/characterize"
	"gpuperf/internal/clock"
	"gpuperf/internal/core"
	"gpuperf/internal/driver"
	"gpuperf/internal/governor"
	"gpuperf/internal/meter"
	"gpuperf/internal/sched"
	"gpuperf/internal/thermal"
	"gpuperf/internal/workloads"
)

// Re-exported types. Aliases keep the internal packages as the single
// implementation while giving users one import.
type (
	// Device is a booted simulated GPU (see SetClocks, Launch, RunMetered).
	Device = driver.Device
	// Pair is a (core, memory) frequency-level pair like (H-L).
	Pair = clock.Pair
	// FreqLevel is one of the vendor performance levels L, M, H.
	FreqLevel = arch.FreqLevel
	// BoardSpec is the static description of a board (Table I).
	BoardSpec = arch.Spec
	// Benchmark is one Table II workload.
	Benchmark = workloads.Benchmark
	// SweepResult is a benchmark swept over every valid frequency pair.
	SweepResult = characterize.BenchResult
	// Dataset is a Section IV modeling corpus for one board.
	Dataset = core.Dataset
	// Model is a trained unified power or performance model (Eq. 1/2).
	Model = core.Model
	// Observation is one modeling row: a (benchmark, size) sample measured
	// at one frequency pair.
	Observation = core.Observation
	// Governor is the model-driven online DVFS manager (the paper's
	// motivating application).
	Governor = governor.Governor
	// GovernorPolicy configures what a Governor optimizes.
	GovernorPolicy = governor.Policy
	// Objective selects what a pair search minimizes (energy, EDP, …).
	Objective = characterize.Objective
)

// Frequency-pair search objectives, re-exported.
const (
	MinEnergy = characterize.MinEnergy
	MinEDP    = characterize.MinEDP
	MinED2P   = characterize.MinED2P
	MinTime   = characterize.MinTime
)

// Frequency levels, re-exported.
const (
	Low  = arch.FreqLow
	Mid  = arch.FreqMid
	High = arch.FreqHigh
)

// Model kinds, re-exported.
const (
	PowerModel = core.Power
	TimeModel  = core.Time
)

// Boards lists the four Table I board names in the paper's order.
func Boards() []string {
	var out []string
	for _, s := range arch.AllBoards() {
		out = append(out, s.Name)
	}
	return out
}

// Board returns the spec of a Table I board, or nil if unknown.
func Board(name string) *BoardSpec { return arch.BoardByName(name) }

// OpenDevice boots a simulated device for the named board at the default
// (H-H) clocks.
func OpenDevice(name string) (*Device, error) { return driver.OpenBoard(name) }

// DefaultPair returns the boot configuration (H-H).
func DefaultPair() Pair { return clock.DefaultPair() }

// ParsePair parses the paper's "(H-L)" notation (parentheses optional).
func ParsePair(s string) (Pair, error) { return clock.ParsePair(s) }

// MustPair is ParsePair for constant strings; it panics on bad input.
func MustPair(s string) Pair {
	p, err := clock.ParsePair(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ValidPairs enumerates the frequency pairs a board's BIOS exposes
// (Table III), default (H-H) first.
func ValidPairs(spec *BoardSpec) []Pair { return clock.ValidPairs(spec) }

// Benchmarks lists all Table II benchmark names.
func Benchmarks() []string {
	var out []string
	for _, b := range workloads.All() {
		out = append(out, b.Name)
	}
	return out
}

// BenchmarkByName returns one Table II benchmark, or nil.
func BenchmarkByName(name string) *Benchmark { return workloads.ByName(name) }

// RunSummary reports one metered benchmark run.
type RunSummary struct {
	Benchmark      string
	Board          string
	Pair           Pair
	TimePerIterS   float64 // execution time per iteration, seconds
	AvgWatts       float64 // measured wall power
	EnergyPerIterJ float64 // measured wall energy per iteration, joules
	Iterations     int
}

// RunBenchmark runs one Table II benchmark on a device at its current
// clocks, metered like the paper's runs (stretched to ≥ 500 ms).
func RunBenchmark(dev *Device, benchmark string, scale float64) (*RunSummary, error) {
	b := workloads.ByName(benchmark)
	if b == nil {
		return nil, fmt.Errorf("gpuperf: unknown benchmark %q", benchmark)
	}
	rr, err := dev.RunMetered(b.Name, b.Kernels(scale), b.HostGap(scale), characterize.MinRunSeconds)
	if err != nil {
		return nil, err
	}
	return &RunSummary{
		Benchmark:      b.Name,
		Board:          dev.Spec().Name,
		Pair:           dev.Clocks(),
		TimePerIterS:   rr.TimePerIteration(),
		AvgWatts:       rr.Measurement.AvgWatts,
		EnergyPerIterJ: rr.EnergyPerIteration(),
		Iterations:     rr.Iterations,
	}, nil
}

// Sweep measures one benchmark at every valid frequency pair of a device
// (the Section III experiment). The device is left at (H-H).
func Sweep(dev *Device, benchmark string) (*SweepResult, error) {
	b := workloads.ByName(benchmark)
	if b == nil {
		return nil, fmt.Errorf("gpuperf: unknown benchmark %q", benchmark)
	}
	return characterize.SweepBenchmark(dev, b)
}

// BestPair returns the minimum-energy frequency pair for a benchmark on a
// device, with its efficiency improvement over (H-H) in percent.
func BestPair(dev *Device, benchmark string) (Pair, float64, error) {
	r, err := Sweep(dev, benchmark)
	if err != nil {
		return Pair{}, 0, err
	}
	return r.Best().Pair, r.ImprovementPct(), nil
}

// CollectDataset gathers the Section IV modeling corpus (the 33-benchmark,
// 114-sample set) for one board. seed drives the measurement noise.
func CollectDataset(board string, seed int64) (*Dataset, error) {
	return core.CollectAll(board, seed)
}

// CollectDatasetParallel is CollectDataset with benchmarks gathered by a
// worker pool (one simulated device per worker). It produces an identical
// dataset to CollectDataset; only wall-clock changes.
func CollectDatasetParallel(board string, seed int64, workers int) (*Dataset, error) {
	return core.CollectCtx(context.Background(), board, workloads.ModelingSet(),
		core.CollectOptions{Seed: seed, Workers: workers})
}

// CollectBenchmarks gathers a modeling corpus restricted to the named
// benchmarks — useful for train/test splits.
func CollectBenchmarks(board string, names []string, seed int64) (*Dataset, error) {
	var benches []*workloads.Benchmark
	for _, n := range names {
		b := workloads.ByName(n)
		if b == nil {
			return nil, fmt.Errorf("gpuperf: unknown benchmark %q", n)
		}
		benches = append(benches, b)
	}
	return core.CollectCtx(context.Background(), board, benches,
		core.CollectOptions{Seed: seed, Workers: 1})
}

// TrainModel fits the unified power (Eq. 1) or performance (Eq. 2) model
// over a dataset with the paper's 10-variable forward selection.
func TrainModel(ds *Dataset, kind core.Kind) (*Model, error) {
	return core.Train(ds, kind, core.MaxVariables)
}

// PredictAll evaluates a model over the dataset it was (or wasn't) trained
// on, returning the mean absolute percentage error.
func PredictAll(m *Model, ds *Dataset) float64 {
	return m.Evaluate(ds.Rows).MeanAbsPct
}

// SaveModel serializes a trained model as JSON (train offline, deploy the
// governor without the dataset).
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel deserializes a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// SaveDataset serializes a modeling corpus as JSON.
func SaveDataset(ds *Dataset, w io.Writer) error { return ds.Save(w) }

// LoadDataset deserializes a corpus written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) { return core.ReadDataset(r) }

// CrossValidate runs leave-one-benchmark-out cross-validation: every
// benchmark is predicted by a model trained on all the others — the error
// a deployed predictor faces on unseen workloads.
func CrossValidate(ds *Dataset, kind core.Kind) (*core.CVResult, error) {
	return core.CrossValidate(ds, kind, core.MaxVariables)
}

// ThermalParams configures the thermal extension (cooler resistance,
// capacitance, throttle point, leakage coefficient).
type ThermalParams = thermal.Params

// DefaultThermalParams returns a dual-slot-cooler configuration for a board
// (its leakage seeds the temperature-dependent surcharge).
func DefaultThermalParams(spec *BoardSpec) ThermalParams {
	return thermal.DefaultParams(spec.CoreLeakWatts + spec.MemLeakWatts)
}

// SimulateThermal integrates the RC thermal model over a run's power trace
// (see Device.RunMetered), returning peak temperature, leakage surcharge
// and throttling, if any.
func SimulateThermal(trace meter.Trace, p ThermalParams, startC float64) (*thermal.Result, error) {
	return thermal.Simulate(trace, p, startC)
}

// BatchPlan is a scheduled batch of jobs with per-job frequency pairs.
type BatchPlan = sched.Plan

// PlanBatchUnderEnergy sweeps each named benchmark on the device, then
// chooses per-job frequency pairs minimizing total batch time under a
// total energy budget in joules (0 disables the budget) — the
// power-constrained throughput optimization of the paper's related work,
// built on measured operating points.
func PlanBatchUnderEnergy(dev *Device, benchmarks []string, budgetJ float64) (*BatchPlan, error) {
	var jobs []sched.Job
	for _, name := range benchmarks {
		sw, err := Sweep(dev, name)
		if err != nil {
			return nil, err
		}
		j := sched.Job{Name: name}
		for _, pr := range sw.Pairs {
			j.Options = append(j.Options, sched.Option{
				Pair: pr.Pair, TimeS: pr.TimePerIter, EnergyJ: pr.EnergyPerIter,
			})
		}
		jobs = append(jobs, j)
	}
	return sched.MinimizeTime(jobs, budgetJ)
}

// PlanBatchUnderDeadline is the symmetric problem: minimize total energy
// subject to a total-time deadline in seconds.
func PlanBatchUnderDeadline(dev *Device, benchmarks []string, deadlineS float64) (*BatchPlan, error) {
	var jobs []sched.Job
	for _, name := range benchmarks {
		sw, err := Sweep(dev, name)
		if err != nil {
			return nil, err
		}
		j := sched.Job{Name: name}
		for _, pr := range sw.Pairs {
			j.Options = append(j.Options, sched.Option{
				Pair: pr.Pair, TimeS: pr.TimePerIter, EnergyJ: pr.EnergyPerIter,
			})
		}
		jobs = append(jobs, j)
	}
	return sched.MinimizeEnergy(jobs, deadlineS)
}

// NewGovernor assembles the online DVFS governor from a device and its two
// trained unified models.
func NewGovernor(dev *Device, powerModel, timeModel *Model, policy GovernorPolicy) (*Governor, error) {
	return governor.New(dev, powerModel, timeModel, policy)
}

// RunTuned profiles a benchmark once, lets the governor choose a frequency
// pair under its policy, and runs the benchmark there, reporting predicted
// and measured power/time.
func RunTuned(g *Governor, benchmark string, scale float64) (*governor.Outcome, error) {
	b := workloads.ByName(benchmark)
	if b == nil {
		return nil, fmt.Errorf("gpuperf: unknown benchmark %q", benchmark)
	}
	return g.RunTuned(b.Name, b.Kernels(scale), b.HostGap(scale))
}
